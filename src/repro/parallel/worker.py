"""Worker-process engine of the ``executor="process"`` backend.

Each worker owns a contiguous global-rank shard of the VPs and runs
their *generators* with a private sequential :class:`PpmRuntime` — the
exact engine the inline executor uses, so every access-protocol rule
(snapshot reads, buffered writes, node-phase write protection, phase
errors) is enforced in-place and every recorded quantity is computed
by the same code.  The differences from inline execution are confined
to the edges:

* shared-variable *committed stores* are not private arrays but
  :mod:`multiprocessing.shared_memory` segments mapped by name
  (zero-copy snapshots; see :class:`repro.parallel.shm.ShmRegistry`);
* each round's recordings are either *encoded* into a compact report
  the parent merges and commits through its unchanged pipeline (ship
  mode — index arrays are interned per worker so a spec shipped once
  is later referenced by id, and a repeated record *structure* ships
  as a plan id), or — when the round carries a static disjointness
  certificate — *held* worker-side and committed directly into the
  shared segments on the parent's ``commit`` command, replying with a
  fixed-size digest instead of the operation stream (zero-merge mode);
* collective handles held by VP code resolve from the parent's
  round-commit results, shipped with the next round command.

The command handlers mirror :class:`repro.parallel.pool.WorkerPool`'s
protocol; :func:`worker_main` is the process entry point.
"""

from __future__ import annotations

import os
import pickle
import time
import traceback
import zlib

import numpy as np

from repro.core import shared as shared_mod
from repro.core.constructs import PhaseDecl
from repro.core.phase import CommitPlanCache, PhaseRecorder, _RANK_KEY
from repro.core.shared import GlobalShared, NodeShared
from repro.core.vp import VpContext, core_of
from repro.machine.cluster import Cluster
from repro.parallel.shm import WorkerSegmentCache


def _ship_exception(exc: BaseException):
    """Encode an exception for the reply pipe: pickled when possible,
    its repr + remote traceback otherwise."""
    tb = "".join(traceback.format_exception(exc))
    try:
        blob = pickle.dumps(exc)
        pickle.loads(blob)  # round-trip check: __reduce__ may lie
    except Exception:
        return ("text", repr(exc), tb)
    return ("pickled", blob, tb)


class _ReportEncoder:
    """Per-do encoder for one worker's round reports.

    Index arrays (row specs and fancy indices) are interned by object
    identity: the first mention ships the array (``("n", iid, arr)``),
    later mentions ship a reference (``("r", iid)``).  The table pins
    every interned array for the do, so an id can never be recycled
    into a different array mid-do.
    """

    def __init__(self) -> None:
        self._known: dict[int, np.ndarray] = {}

    def array(self, arr: np.ndarray):
        iid = id(arr)
        if iid in self._known:
            return ("r", iid)
        self._known[iid] = arr
        return ("n", iid, arr)

    def spec(self, spec):
        if spec.array is None:
            return ("R", spec.start, spec.stop, spec.step)
        return ("A", self.array(spec.array))

    def idx(self, idx):
        if type(idx) is np.ndarray and idx.dtype != np.bool_:
            return ("a", self.array(idx))
        return ("v", idx)


class _WorkerDo:
    """State of one in-flight ``ppm.do`` on this worker."""

    def __init__(self, state: "_WorkerState", common: dict, shard) -> None:
        self.cache = state.cache
        self.cluster = Cluster(state.config)
        # Deferred import: the runtime package imports repro.parallel
        # lazily, never the other way around at module level.
        from repro.core.runtime import PpmRuntime, _VpRecord

        self.rt = PpmRuntime(self.cluster, hot_path=common["hot_path"])
        # Shared-variable proxies: identical handles to the parent's,
        # except their committed stores are the mapped segments.
        self.proxies: dict[str, object] = {}
        for name, kind, shape, dtype_str, segs in common["shared"]:
            dtype = np.dtype(dtype_str)
            if kind == "global":
                sv = GlobalShared(self.rt, name, shape, dtype=dtype, fill=None)
                self._rebind(sv, None, segs)
            else:
                sv = NodeShared(self.rt, name, shape, dtype=dtype, fill=None)
                for instance, seg in segs:
                    self._rebind(sv, instance, seg)
            self.proxies[name] = sv
            self.rt.shared_registry[name] = sv
        # Kernel blob: shared handles inside it unpickle as name
        # references resolved against this worker's proxies.
        shared_mod._PICKLE_REGISTRY = self.proxies
        try:
            funcs, args, kwargs = pickle.loads(common["kernel"])
        finally:
            shared_mod._PICKLE_REGISTRY = None
        counts = common["counts"]
        decl_kind, decl_latency = common["default_decl"]
        default_decl = PhaseDecl(decl_kind, latency_rounds=decl_latency)
        total = sum(counts)
        cores = self.cluster.cores_per_node
        lo, hi = shard
        self.vps: list = []  # this worker's _VpRecords, in rank order
        self.by_node: dict[int, list] = {}
        offset = 0
        for node_id, k in enumerate(counts):
            f = funcs[node_id]
            genfunc = (
                self.rt._as_generator(f, default_decl) if f is not None else None
            )
            for r in range(k):
                grank = offset + r
                if lo <= grank < hi:
                    ctx = VpContext(
                        self.rt,
                        node_id=node_id,
                        node_rank=r,
                        global_rank=grank,
                        node_vp_count=k,
                        global_vp_count=total,
                        core_id=core_of(r, k, cores),
                    )
                    vp = _VpRecord(ctx, genfunc(ctx, *args, **kwargs))
                    self.vps.append(vp)
                    self.by_node.setdefault(node_id, []).append(vp)
            offset += k
        self.enc = _ReportEncoder()
        # node_key (None = global) -> unresolved collective slots of the
        # previous round, awaiting the parent's commit results.
        self.pending: dict = {}
        # Certificate handoff: rebuild the parent's static proof from
        # this worker's unpickled kernel — the analysis is a pure
        # function of the source and the argument classification, so
        # worker and parent derive the same certificate independently
        # (no frames or code objects cross the pipe).
        self.cert = None
        if common.get("certify"):
            distinct = {id(f) for f in funcs if f is not None}
            if len(distinct) == 1 and funcs[0] is not None:
                from repro.analysis.certify import certificate_for

                self.cert = certificate_for(funcs[0], args, kwargs)
        # Zero-merge state: recorders held between the exec round and
        # the parent's commit decision, the cross-round commit-plan
        # cache, and the cached per-target committed-row footprints
        # (valid while the target's _TargetPlan is unchanged).
        self.held: dict = {}
        self.commit_plans = CommitPlanCache()
        self._footprints: dict = {}
        # Record-structure plan cache: a round whose encoded rec
        # structure (reads/writes/spec refs/counts) is an exact repeat
        # ships a plan id instead of the payload.
        self._rec_plans: dict = {}
        self._rec_next = 0
        self.rec_hits = 0
        self.rec_misses = 0

    def _rebind(self, sv, instance, segment_name: str) -> None:
        """Point one proxy instance at its mapped segment."""
        shape = sv.shape
        dtype = sv.dtype
        arr = self.cache.attach(segment_name, shape, dtype)
        ro = arr.view()
        ro.flags.writeable = False
        if instance is None:
            sv._data = arr
            sv._ro = ro
        else:
            sv._data[instance] = arr
            sv._ro[instance] = ro

    # ------------------------------------------------------------------
    def prologue(self):
        """Run every VP up to its first phase declaration."""
        for vp in self.vps:
            self.rt._advance(vp)
        return [self._vp_state(vp) for vp in self.vps]

    @staticmethod
    def _vp_state(vp, cost: float = 0.0):
        decl = vp.decl
        return (
            vp.ctx.global_rank,
            vp.done,
            None if decl is None else (decl.kind, decl.latency_rounds),
            cost,
        )

    # ------------------------------------------------------------------
    def round(self, cmd: dict) -> dict:
        t0 = time.perf_counter()
        # 1. Remap swapped segments (parent copy-on-commit) by name.
        for name, instance, segment_name in cmd["remaps"]:
            self._rebind(self.proxies[name], instance, segment_name)
        # 2. Resolve collective handles from the previous round's commit.
        for node_key, results in cmd["coll_results"]:
            slots = self.pending.get(node_key)
            if not slots:
                continue
            for i, (kind, payload) in enumerate(results):
                if i >= len(slots):
                    break
                for rank, _value, handle in slots[i].entries:
                    handle._resolve(
                        payload if kind == "reduce" else payload.get(rank)
                    )
        self.pending = {}
        # 3. Apply the parent's load-balanced VP->core assignment.
        core_map = cmd["core_map"]
        if core_map:
            for vp in self.vps:
                core = core_map.get(vp.ctx.global_rank)
                if core is not None:
                    vp.ctx.core_id = core
        # 4. Run this round's phase bodies for my shard.  In "hold"
        # mode the buffered operations stay worker-side, awaiting the
        # parent's commit decision; certification flags are read off
        # the suspended frames *before* the bodies run, exactly when
        # the inline engine checks them.
        kind = cmd["kind"]
        hold = cmd.get("mode") == "hold"
        # Replay mode (crash recovery): a respawned worker re-executes
        # logged round commands to rebuild its generators' state.  The
        # bodies run exactly as live rounds do — collectives resolve
        # from the logged results, recorders are held when commanded —
        # but nothing is *encoded*: the parent discarded the original
        # replies long ago, and interning arrays into the report
        # encoder here would leave later ``("r", iid)`` references
        # dangling on the parent side.
        replay = cmd.get("replay", False)
        nodes = [n for n in cmd["nodes"] if n in self.by_node]
        advanced = 0
        if kind == "global":
            body_vps = [vp for n in nodes for vp in self.by_node[n]]
            advanced += sum(1 for vp in body_vps if not vp.done)
            if replay:
                self._run_recorder(kind, body_vps, None, hold, encode=False)
                payload = {"replayed": True}
            else:
                flags = self._round_flags(body_vps, kind)
                payload = {
                    "report": self._run_recorder(kind, body_vps, None, hold),
                    "flags": flags,
                }
        elif replay:
            for node_id in nodes:
                node_vps = self.by_node[node_id]
                advanced += sum(1 for vp in node_vps if not vp.done)
                self._run_recorder(kind, node_vps, node_id, hold, encode=False)
            payload = {"replayed": True}
        else:
            reports = []
            for node_id in nodes:
                node_vps = self.by_node[node_id]
                advanced += sum(1 for vp in node_vps if not vp.done)
                flags = self._round_flags(node_vps, kind)
                reports.append(
                    (
                        node_id,
                        self._run_recorder(kind, node_vps, node_id, hold),
                        flags,
                    )
                )
            payload = {"nodes": reports}
        # 5. Snapshot-view flags, collected once per round (within a
        # round, no commit can observe another node's phase activity:
        # node phases touch disjoint instances and cannot write global
        # arrays, so round-level granularity is exact).
        views = []
        for name, sv in self.proxies.items():
            flags = sv._views_taken
            if isinstance(sv, NodeShared):
                for instance, flag in enumerate(flags):
                    if flag:
                        views.append((name, instance))
                        flags[instance] = False
            elif flags:
                views.append((name, None))
                sv._views_taken = False
        payload["views"] = views
        payload["advanced"] = advanced
        payload["host_s"] = time.perf_counter() - t0
        return payload

    def _round_flags(self, vps: list, kind: str):
        """(certified, zero_merge) for my shard's VPs, read off the
        suspended frames before the bodies run.  ``(None, None)`` when
        no VP of the group is active in my shard (the parent skips such
        workers when combining)."""
        if not any(not vp.done for vp in vps):
            return (None, None)
        cert = self.cert
        if cert is None:
            return (False, False)
        return (
            cert.round_certified(vps, kind),
            cert.round_zero_merge(vps, kind),
        )

    def _run_recorder(
        self,
        kind: str,
        vps: list,
        node_key,
        hold: bool = False,
        encode: bool = True,
    ) -> dict | None:
        """Advance the listed VPs under a fresh recorder; encode it.
        Under ``hold`` the recorder is retained for the parent's commit
        command and the encoded report omits the operation stream.
        ``encode=False`` (crash-recovery replay) skips the report
        entirely and returns None."""
        rt = self.rt
        recorder = PhaseRecorder(kind)
        rt.phase = recorder
        vp_states = []
        try:
            for vp in vps:
                if vp.done:
                    continue
                ctx = vp.ctx
                ctx._cost = 0.0
                ctx._coll_index = 0
                rt._advance(vp)
                vp_states.append(self._vp_state(vp, ctx._cost))
                ctx._cost = 0.0
        finally:
            rt.phase = None
        self.pending[node_key] = recorder.collective_slots
        if hold:
            self.held[node_key] = recorder
        if not encode:
            return None
        return self._encode(recorder, vp_states, include_ops=not hold)

    def _encode_ops(self, ops: list) -> list:
        enc = self.enc
        return [
            (
                ev.shared.name,
                ev.instance,
                ev.kind,
                ev.op,
                enc.idx(ev.idx),
                ev.value,
                enc.spec(ev.rows),
                ev.rank,
                ev.rows_exact,
            )
            for ev in ops
        ]

    def _encode(
        self, recorder: PhaseRecorder, vp_states: list, include_ops: bool = True
    ) -> dict:
        enc = self.enc
        payload = {
            "vps": vp_states,
            "colls": [
                (i, slot.kind, slot.op, [(r, v) for r, v, _h in slot.entries])
                for i, slot in enumerate(recorder.collective_slots)
                if slot.entries
            ],
        }
        if include_ops:
            payload["ops"] = self._encode_ops(recorder.write_ops)
        else:
            # Hold mode: the parent pre-swaps the written targets
            # before the commit command, so it needs the target list
            # (not the operations) up front.
            payload["wtargets"] = sorted(
                {(ev.shared.name, ev.instance) for ev in recorder.write_ops},
                key=lambda t: (t[0], -1 if t[1] is None else t[1]),
            )
        greads = [
            (node_id, sv.name, [enc.spec(s) for s in specs], n_elem)
            for (node_id, sv), (specs, n_elem) in recorder.global_read_recs.items()
        ]
        gwrites = [
            (node_id, sv.name, [enc.spec(s) for s in specs], n_elem)
            for (node_id, sv), (specs, n_elem) in recorder.global_write_recs.items()
        ]
        recs = {
            "greads": greads,
            "gwrites": gwrites,
            "nwe": dict(recorder.node_write_elems),
            "nro": recorder.node_read_ops,
            "nre": recorder.node_read_elems,
        }
        # Record-structure plan cache: once every spec in the encoding
        # is an interned reference, the structure is hashable and an
        # exact repeat ships as a plan id.  (A first mention carries a
        # raw ndarray and falls out via TypeError — shipped in full,
        # cacheable from the next round on.)
        pid = None
        key = None
        try:
            key = (
                tuple(
                    (nid, name, tuple(specs), ne)
                    for nid, name, specs, ne in greads
                ),
                tuple(
                    (nid, name, tuple(specs), ne)
                    for nid, name, specs, ne in gwrites
                ),
                tuple(sorted(recs["nwe"].items())),
                recs["nro"],
                recs["nre"],
            )
            pid = self._rec_plans.get(key)
        except TypeError:
            key = None
        if pid is not None:
            payload["rec_plan"] = pid
            self.rec_hits += 1
        else:
            if key is not None:
                pid = self._rec_next
                self._rec_next += 1
                self._rec_plans[key] = pid
                payload["rec_new"] = pid
            self.rec_misses += 1
            payload.update(recs)
        return payload

    # ------------------------------------------------------------------
    @staticmethod
    def _ops_bytes(ops: list) -> int:
        """Estimate of the pipe bytes a shipped encoding of ``ops``
        would have cost (value buffers + index arrays + per-op tuple
        overhead) — the "merge bytes avoided" statistic of a zero-merge
        commit."""
        total = 0
        for ev in ops:
            v = ev.value
            total += v.nbytes if isinstance(v, np.ndarray) else 8
            if isinstance(ev.idx, np.ndarray):
                total += ev.idx.nbytes
            elif ev.rows.array is not None:
                total += ev.rows.array.nbytes
            total += 64
        return total

    def commit(self, cmd: dict) -> dict:
        """Parent's commit command for the preceding hold-mode round.

        The parent has already pre-swapped every aliased target
        (copy-on-commit) and ships the remaps here; after rebinding,
        a ``"local"`` decision commits the held recorder straight into
        the mapped segments and replies with a fixed-size digest, a
        ``"ship"`` decision falls back to encoding the operation stream
        for the parent's ordinary merge-and-commit path.

        Under ``restore=True`` (crash recovery: this worker replaced
        one that died *inside* the commit window) the dead worker may
        have partially applied its in-place ops to the post-swap
        segments — fatal for accumulates, which are not idempotent.
        Before re-applying, each local group's committed-row footprint
        is copied from the retained pre-swap segment (the current
        attachment, pristine) into the post-swap target, resetting
        exactly this shard's rows; conflict-freedom certification
        guarantees no other worker's rows are touched."""
        restore = cmd.get("restore", False)
        saved = []
        if restore:
            for node_key, decision in cmd["groups"]:
                recorder = self.held.get(node_key)
                if recorder is None or decision == "ship":
                    continue
                groups: dict = {}
                for ev in recorder.write_ops:
                    groups.setdefault((id(ev.shared), ev.instance), []).append(ev)
                for evs in groups.values():
                    sv = evs[0].shared
                    instance = evs[0].instance
                    pristine = sv._data if instance is None else sv._data[instance]
                    rows = self._footprint((sv.name, instance), evs)
                    saved.append((sv, instance, rows, pristine[rows].copy()))
        for name, instance, segment_name in cmd["remaps"]:
            self._rebind(self.proxies[name], instance, segment_name)
        for sv, instance, rows, vals in saved:
            target = sv._data if instance is None else sv._data[instance]
            target[rows] = vals
        verify = cmd.get("verify", False)
        replies = []
        for node_key, decision in cmd["groups"]:
            recorder = self.held.pop(node_key, None)
            if recorder is None:
                replies.append((node_key, {"ops_n": 0}))
            elif decision == "ship":
                replies.append(
                    (node_key, {"ops": self._encode_ops(recorder.write_ops)})
                )
            else:
                replies.append((node_key, self._commit_local(recorder, verify)))
        return {"groups": replies}

    def _commit_local(self, recorder: PhaseRecorder, verify: bool) -> dict:
        """Commit my shard's held operations in place.

        The round carried a zero-merge certificate, so across VPs the
        written rows are disjoint: each element of a target is only
        ever touched by one worker, and applying that worker's ops in
        its own (rank, seq) order — through the very same plan/stream
        code the parent's commit uses — produces bitwise-identical
        stores to the global rank-ordered parent commit."""
        plans = self.commit_plans
        h0, m0 = plans.hits, plans.misses
        ops = sorted(recorder.write_ops, key=_RANK_KEY)
        groups: dict = {}
        for ev in ops:
            groups.setdefault((id(ev.shared), ev.instance), []).append(ev)
        checksums = []
        for evs in groups.values():
            sv = evs[0].shared
            instance = evs[0].instance
            # The parent already ran copy-on-commit and shipped the
            # remaps with this command; the proxy's store *is* the
            # commit target (never sv._commit_target, which would
            # detach the proxy from the segment).
            target = sv._data if instance is None else sv._data[instance]
            plans.apply(target, evs)
            key = (sv.name, instance)
            rows = self._footprint(key, evs)
            crc = zlib.crc32(np.ascontiguousarray(target[rows]).tobytes())
            checksums.append(
                (sv.name, instance, crc, self.enc.array(rows) if verify else None)
            )
        return {
            "ops_n": len(ops),
            "bytes_avoided": self._ops_bytes(ops),
            "plan_hits": plans.hits - h0,
            "plan_misses": plans.misses - m0,
            "checksums": checksums,
        }

    def _footprint(self, key, evs: list) -> np.ndarray:
        """Sorted unique rows my shard committed to this target,
        cached across rounds while the target's commit plan (and hence
        the access pattern) is unchanged."""
        plan = self.commit_plans._plans.get(key)
        cached = self._footprints.get(key)
        if cached is not None and plan is not None and cached[0] is plan:
            return cached[1]
        rows = np.unique(np.concatenate([ev.rows.materialize() for ev in evs]))
        if plan is not None:
            self._footprints[key] = (plan, rows)
        return rows


class _WorkerState:
    """Long-lived per-process state across ``do`` invocations."""

    def __init__(self, worker_id: int) -> None:
        self.worker_id = worker_id
        self.config = None
        self.cache = WorkerSegmentCache()
        self.do: _WorkerDo | None = None

    def handle(self, tag: str, payload):
        if tag == "init":
            self.config = payload["config"]
            return None
        if tag == "do_start":
            self.do = _WorkerDo(self, payload["common"], payload["shard"])
            return None
        if tag == "prologue":
            return self.do.prologue()
        if tag == "round":
            return self.do.round(payload)
        if tag == "commit":
            return self.do.commit(payload)
        if tag == "do_end":
            self.do = None
            self.cache.clear()
            return None
        raise RuntimeError(f"unknown worker command {tag!r}")


def worker_main(conn, worker_id: int) -> None:
    """Entry point of one worker process: serve commands until
    ``shutdown`` or a closed pipe.

    When ``PPM_PROFILE_DIR`` names a directory (the bench harness's
    ``--profile`` flag sets it), the whole command loop runs under
    :mod:`cProfile` and the top-20 cumulative-time entries are written
    to ``worker-<pid>.prof.txt`` there on exit."""
    profile_dir = os.environ.get("PPM_PROFILE_DIR")
    if profile_dir:
        import cProfile

        prof = cProfile.Profile()
        prof.enable()
        try:
            _worker_loop(conn, worker_id)
        finally:
            prof.disable()
            try:
                import io
                import pstats

                buf = io.StringIO()
                stats = pstats.Stats(prof, stream=buf)
                stats.sort_stats("cumulative").print_stats(20)
                path = os.path.join(
                    profile_dir, f"worker-{os.getpid()}.prof.txt"
                )
                with open(path, "w") as fh:
                    fh.write(buf.getvalue())
            except OSError:  # pragma: no cover - profile dir vanished
                pass
    else:
        _worker_loop(conn, worker_id)


def _worker_loop(conn, worker_id: int) -> None:
    state = _WorkerState(worker_id)
    while True:
        try:
            tag, payload = conn.recv()
        except (EOFError, OSError, KeyboardInterrupt):
            break
        if tag == "shutdown":
            break
        try:
            reply = ("ok", state.handle(tag, payload))
        except KeyboardInterrupt:
            reply = ("interrupt", None)
        except BaseException as exc:  # noqa: BLE001 - shipped to parent
            reply = ("exc", _ship_exception(exc))
        try:
            conn.send(reply)
        except KeyboardInterrupt:
            break
        except Exception as exc:
            # The reply itself would not serialise (e.g. a collective
            # carrying an unpicklable value).  Degrade to a PPM504
            # diagnostic so the protocol stays in sync.
            try:
                conn.send(
                    (
                        "exc",
                        (
                            "ppm504",
                            "a worker reply could not be serialised — "
                            "values shipped between phases (collective "
                            "contributions, written values) must be "
                            f"picklable: {exc!r}",
                            traceback.format_exc(),
                        ),
                    )
                )
            except Exception:  # pragma: no cover - pipe gone
                break
