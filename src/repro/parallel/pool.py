"""Worker process pool and the command-pipe protocol.

The process backend keeps one pool of persistent worker processes per
:class:`~repro.core.runtime.PpmRuntime` (created lazily at the first
``ppm.do``, reused across ``do`` calls).  Parent and workers speak a
strict request/reply protocol over one duplex pipe per worker — every
command sent receives exactly one reply, so the pipes can never
desynchronise across ``do`` boundaries or error paths:

* commands are ``(tag, payload)`` tuples (``init``, ``do_start``,
  ``prologue``, ``round``, ``do_end``, ``shutdown``);
* replies are ``("ok", result)``, ``("exc", shipped_exception)`` or
  ``("interrupt", None)`` — a worker-side ``KeyboardInterrupt`` is
  re-raised in the parent *as* ``KeyboardInterrupt``, preserving the
  run_ppm teardown contract.

Workers are daemonic and exit via ``os._exit`` (multiprocessing's
child bootstrap), so a forked worker never runs the parent's inherited
``atexit``/finalizer state — in particular it can never unlink the
parent's shared-memory segments.
"""

from __future__ import annotations

import multiprocessing
import pickle

from repro.core.errors import ParallelConfigError, ParallelExecutionError


def _start_context():
    """``fork`` where available (workers inherit warm shm mappings and
    module state), ``spawn`` elsewhere."""
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context("fork" if "fork" in methods else "spawn")


def _revive_exception(worker_id: int, shipped) -> BaseException:
    """Turn a worker's shipped exception back into a raisable one."""
    form = shipped[0]
    if form == "ppm504":
        _form, message, _tb = shipped
        return ParallelConfigError(message, code="PPM504")
    if form == "pickled":
        _form, blob, tb = shipped
        try:
            exc = pickle.loads(blob)
        except Exception:
            return ParallelExecutionError(
                f"worker {worker_id} failed and its exception could not be "
                f"deserialised; remote traceback:\n{tb}"
            )
        if isinstance(exc, BaseException):
            exc.add_note(f"(raised in PPM worker {worker_id})")
            return exc
        return ParallelExecutionError(
            f"worker {worker_id} shipped a non-exception payload {exc!r}; "
            f"remote traceback:\n{tb}"
        )
    _form, text, tb = shipped
    return ParallelExecutionError(
        f"worker {worker_id} raised {text}; remote traceback:\n{tb}"
    )


class WorkerPool:
    """A fixed set of persistent worker processes plus their pipes.

    All traffic goes through :meth:`roundtrip` (send one command to
    every worker, then collect one reply from each), keeping the
    one-reply-per-command invariant even on error paths: replies are
    always drained from every worker that was successfully sent to
    *before* any error is raised.
    """

    def __init__(self, n_workers: int, init_payload) -> None:
        if n_workers < 1:
            raise ParallelConfigError(
                f"worker pool size must be >= 1, got {n_workers}", code="PPM502"
            )
        # Deferred import: worker imports the runtime stack, which would
        # otherwise cycle through repro.parallel at package import time.
        from repro.parallel.worker import worker_main

        ctx = _start_context()
        self.n_workers = n_workers
        self._procs = []
        self._conns = []
        self._dead: set[int] = set()
        self._closed = False
        try:
            for i in range(n_workers):
                parent_conn, child_conn = ctx.Pipe(duplex=True)
                proc = ctx.Process(
                    target=worker_main,
                    args=(child_conn, i),
                    name=f"ppm-worker-{i}",
                    daemon=True,
                )
                proc.start()
                child_conn.close()
                self._procs.append(proc)
                self._conns.append(parent_conn)
            self.roundtrip("init", init_payload)
        except BaseException:
            self.close()
            raise

    # ------------------------------------------------------------------
    def roundtrip(self, tag: str, payload, *, per_worker=None):
        """Send ``(tag, payload)`` to every live worker and return the
        list of their results (indexed by worker id; ``None`` for dead
        workers).  ``per_worker`` optionally overrides the payload per
        worker id.  Raises after draining every pending reply, so the
        protocol stays in sync for the next command."""
        if self._closed:
            raise ParallelExecutionError("worker pool is closed")
        sent = []
        for i, conn in enumerate(self._conns):
            if i in self._dead:
                continue
            body = payload if per_worker is None else per_worker[i]
            try:
                conn.send((tag, body))
            except (OSError, ValueError):
                self._dead.add(i)
                continue
            sent.append(i)
        replies: list = [None] * self.n_workers
        for i in sent:
            try:
                replies[i] = self._conns[i].recv()
            except (EOFError, OSError):
                self._dead.add(i)
        # All replies are drained; now surface failures.  A worker-side
        # KeyboardInterrupt wins (the user hit Ctrl-C; unwind as such).
        results: list = [None] * self.n_workers
        failure = None
        for i in sent:
            reply = replies[i]
            if reply is None:
                continue
            status, body = reply
            if status == "ok":
                results[i] = body
            elif status == "interrupt":
                raise KeyboardInterrupt
            elif failure is None:
                failure = _revive_exception(i, body)
        if failure is not None:
            raise failure
        if self._dead:
            dead = sorted(self._dead)
            raise ParallelExecutionError(
                f"worker process(es) {dead} died unexpectedly (killed, or "
                "crashed without shipping an exception); the pool cannot "
                "continue"
            )
        return results

    def best_effort(self, tag: str, payload) -> None:
        """Fire ``(tag, payload)`` and drain acks, swallowing every
        failure — used for ``do_end`` on teardown paths where the real
        error is already propagating."""
        try:
            self.roundtrip(tag, payload)
        except BaseException:
            pass

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Shut every worker down.  Idempotent; escalates from a
        cooperative ``shutdown`` command to ``terminate`` for workers
        that do not exit promptly."""
        if self._closed:
            return
        self._closed = True
        for i, conn in enumerate(self._conns):
            if i in self._dead:
                continue
            try:
                conn.send(("shutdown", None))
            except (OSError, ValueError):
                pass
        for proc in self._procs:
            proc.join(timeout=5.0)
        for proc in self._procs:
            if proc.is_alive():  # pragma: no cover - stuck worker
                proc.terminate()
        for proc in self._procs:
            if proc.is_alive():  # pragma: no cover - stuck worker
                proc.join(timeout=5.0)
        for conn in self._conns:
            try:
                conn.close()
            except OSError:  # pragma: no cover - already closed
                pass

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()
