"""Worker process pool and the command-pipe protocol.

The process backend keeps one pool of persistent worker processes per
:class:`~repro.core.runtime.PpmRuntime` (created lazily at the first
``ppm.do``, reused across ``do`` calls).  Parent and workers speak a
strict request/reply protocol over one duplex pipe per worker — every
command sent receives exactly one reply, so the pipes can never
desynchronise across ``do`` boundaries or error paths:

* commands are ``(tag, payload)`` tuples (``init``, ``do_start``,
  ``prologue``, ``round``, ``do_end``, ``shutdown``);
* replies are ``("ok", result)``, ``("exc", shipped_exception)`` or
  ``("interrupt", None)`` — a worker-side ``KeyboardInterrupt`` is
  re-raised in the parent *as* ``KeyboardInterrupt``, preserving the
  run_ppm teardown contract.

Workers are daemonic and exit via ``os._exit`` (multiprocessing's
child bootstrap), so a forked worker never runs the parent's inherited
``atexit``/finalizer state — in particular it can never unlink the
parent's shared-memory segments.
"""

from __future__ import annotations

import multiprocessing
import pickle

from repro.core.errors import (
    ParallelConfigError,
    ParallelExecutionError,
    WorkerDeathError,
)


def _start_context():
    """``fork`` where available (workers inherit warm shm mappings and
    module state), ``spawn`` elsewhere."""
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context("fork" if "fork" in methods else "spawn")


def _revive_exception(worker_id: int, shipped) -> BaseException:
    """Turn a worker's shipped exception back into a raisable one."""
    form = shipped[0]
    if form == "ppm504":
        _form, message, _tb = shipped
        return ParallelConfigError(message, code="PPM504")
    if form == "pickled":
        _form, blob, tb = shipped
        try:
            exc = pickle.loads(blob)
        except Exception:
            return ParallelExecutionError(
                f"worker {worker_id} failed and its exception could not be "
                f"deserialised; remote traceback:\n{tb}"
            )
        if isinstance(exc, BaseException):
            exc.add_note(f"(raised in PPM worker {worker_id})")
            return exc
        return ParallelExecutionError(
            f"worker {worker_id} shipped a non-exception payload {exc!r}; "
            f"remote traceback:\n{tb}"
        )
    _form, text, tb = shipped
    return ParallelExecutionError(
        f"worker {worker_id} raised {text}; remote traceback:\n{tb}"
    )


class WorkerPool:
    """A fixed set of persistent worker processes plus their pipes.

    All traffic goes through :meth:`roundtrip` (send one command to
    every worker, then collect one reply from each), keeping the
    one-reply-per-command invariant even on error paths: replies are
    always drained from every worker that was successfully sent to
    *before* any error is raised.
    """

    def __init__(self, n_workers: int, init_payload) -> None:
        if n_workers < 1:
            raise ParallelConfigError(
                f"worker pool size must be >= 1, got {n_workers}", code="PPM502"
            )
        # Deferred import: worker imports the runtime stack, which would
        # otherwise cycle through repro.parallel at package import time.
        from repro.parallel.worker import worker_main

        ctx = _start_context()
        self.n_workers = n_workers
        self._procs = []
        self._conns = []
        self._dead: set[int] = set()
        self._closed = False
        #: Kept for worker respawns (crash recovery).
        self._init_payload = init_payload
        #: Recovery hook (a
        #: :class:`~repro.parallel.supervisor.WorkerSupervisor`);
        #: None means a worker death is fatal (PPM603).
        self.supervisor = None
        #: Diagnostics: round-command dispatches and the last command
        #: on the pipes, named by the PPM603 message.
        self._round_no = 0
        self._last_tag = "init"
        try:
            for i in range(n_workers):
                self._spawn(ctx, i)
            self.roundtrip("init", init_payload)
        except BaseException:
            self.close()
            raise

    def _spawn(self, ctx, i: int) -> None:
        """Fork worker ``i`` and store its process + pipe at index
        ``i`` (appending on first spawn, replacing on respawn)."""
        from repro.parallel.worker import worker_main

        parent_conn, child_conn = ctx.Pipe(duplex=True)
        proc = ctx.Process(
            target=worker_main,
            args=(child_conn, i),
            name=f"ppm-worker-{i}",
            daemon=True,
        )
        proc.start()
        child_conn.close()
        if i < len(self._procs):
            self._procs[i] = proc
            self._conns[i] = parent_conn
        else:
            self._procs.append(proc)
            self._conns.append(parent_conn)

    # ------------------------------------------------------------------
    def roundtrip(self, tag: str, payload, *, per_worker=None, supervised=True):
        """Send ``(tag, payload)`` to every live worker and return the
        list of their results (indexed by worker id; ``None`` for dead
        workers).  ``per_worker`` optionally overrides the payload per
        worker id.  Raises after draining every pending reply, so the
        protocol stays in sync for the next command.

        Failure handling: a send error or closed pipe classifies the
        worker as ``"crash"``, a reply overrunning the supervisor's
        deadline as ``"hang"`` (the child is hard-killed so a stale
        reply can never desynchronise the pipe), and a reply that fails
        to deserialise as ``"corrupt-reply"``.  With a supervisor
        attached (and ``supervised=True``) the failures are handed to
        its recovery machinery and the recovered results spliced in;
        otherwise a :class:`~repro.core.errors.WorkerDeathError`
        (PPM603) names the workers, the failure kinds, the round and
        the command."""
        if self._closed:
            raise ParallelExecutionError("worker pool is closed")
        sup = self.supervisor if supervised else None
        self._last_tag = tag
        if tag == "round":
            self._round_no += 1
        failures: list[tuple[int, str]] = []
        if sup is not None and self._dead:
            # Workers that died on an unsupervised path (e.g. during a
            # best-effort do_end) are recovered on the next supervised
            # command instead of silently skipping it.
            failures.extend((i, "crash") for i in sorted(self._dead))
        sent = []
        for i, conn in enumerate(self._conns):
            if i in self._dead:
                continue
            body = payload if per_worker is None else per_worker[i]
            try:
                conn.send((tag, body))
            except (OSError, ValueError):
                self._dead.add(i)
                failures.append((i, "crash"))
                continue
            sent.append(i)
        if sup is not None:
            sup.maybe_chaos(tag, sent)
        deadline = sup.deadline_for(tag) if sup is not None else None
        replies: list = [None] * self.n_workers
        for i in sent:
            try:
                if deadline is not None and not self._conns[i].poll(deadline):
                    # Hung: hard-kill (SIGKILL — SIGTERM would stay
                    # pending on a SIGSTOPped child) so no late reply
                    # can ever desynchronise a reused pipe slot.
                    self._dead.add(i)
                    failures.append((i, "hang"))
                    try:
                        self._procs[i].kill()
                    except OSError:  # pragma: no cover - raced exit
                        pass
                    continue
                replies[i] = self._conns[i].recv()
            except (EOFError, OSError):
                self._dead.add(i)
                failures.append((i, "crash"))
            except Exception:
                # recv() deserialisation failure: the pipe returned
                # bytes that do not unpickle.  The stream position is
                # unknowable now, so the worker is retired.
                self._dead.add(i)
                failures.append((i, "corrupt-reply"))
        # All replies are drained; now surface failures.  A worker-side
        # KeyboardInterrupt wins (the user hit Ctrl-C; unwind as such).
        results: list = [None] * self.n_workers
        failure = None
        for i in sent:
            reply = replies[i]
            if reply is None:
                continue
            status, body = reply
            if status == "ok":
                results[i] = body
            elif status == "interrupt":
                raise KeyboardInterrupt
            elif failure is None:
                failure = _revive_exception(i, body)
        if failure is not None:
            raise failure
        if failures:
            if sup is not None:
                for w, rec in sup.recover(
                    tag, payload, per_worker, failures
                ).items():
                    results[w] = rec
            else:
                dead = sorted(i for i, _kind in failures)
                kinds = ", ".join(
                    f"worker {i}: {kind}" for i, kind in sorted(failures)
                )
                raise WorkerDeathError(
                    f"worker process(es) {dead} died unexpectedly during "
                    f"{tag!r} (round {self._round_no}; {kinds}) — killed, "
                    "hung past the deadline, or crashed without shipping "
                    "an exception; without run_ppm(..., supervision=) the "
                    "pool cannot continue"
                )
        elif self._dead:
            dead = sorted(self._dead)
            raise WorkerDeathError(
                f"worker process(es) {dead} died unexpectedly (last "
                f"command {self._last_tag!r}, round {self._round_no}); "
                "the pool cannot continue"
            )
        return results

    def best_effort(self, tag: str, payload) -> None:
        """Fire ``(tag, payload)`` and drain acks, swallowing every
        failure — used for ``do_end`` on teardown paths where the real
        error is already propagating.  Bypasses supervision: a teardown
        must never recurse into recovery."""
        try:
            self.roundtrip(tag, payload, supervised=False)
        except BaseException:
            pass

    # ------------------------------------------------------------------
    # Single-worker traffic (crash recovery)
    # ------------------------------------------------------------------
    def send_one(self, w: int, tag: str, body) -> None:
        """Send one command to one worker (recovery replay traffic)."""
        self._conns[w].send((tag, body))

    def recv_one(self, w: int, deadline: float | None = None):
        """Receive one reply from one worker: the ``"ok"`` body, or the
        revived exception / ``KeyboardInterrupt`` / ``TimeoutError`` on
        deadline overrun."""
        conn = self._conns[w]
        if deadline is not None and not conn.poll(deadline):
            raise TimeoutError(
                f"worker {w} overran its {deadline:.1f}s reply deadline"
            )
        status, body = conn.recv()
        if status == "ok":
            return body
        if status == "interrupt":
            raise KeyboardInterrupt
        raise _revive_exception(w, body)

    def _reap(self, w: int) -> None:
        """Retire worker ``w``'s process and pipe ahead of a respawn.
        ``kill()`` (SIGKILL), not ``terminate()``: SIGTERM stays
        pending on a SIGSTOPped child forever."""
        try:
            self._conns[w].close()
        except OSError:  # pragma: no cover - already closed
            pass
        proc = self._procs[w]
        try:
            proc.kill()
            proc.join(timeout=5.0)
        except (OSError, ValueError):  # pragma: no cover - already gone
            pass
        self._dead.add(w)

    def _respawn(self, w: int) -> None:
        """Fork a replacement for worker ``w`` from the live template
        and run its init handshake; the slot leaves the dead set only
        after the handshake succeeds."""
        self._spawn(_start_context(), w)
        self.send_one(w, "init", self._init_payload)
        self.recv_one(w, 60.0)
        self._dead.discard(w)

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Shut every worker down.  Idempotent; escalates from a
        cooperative ``shutdown`` command to ``terminate`` for workers
        that do not exit promptly."""
        if self._closed:
            return
        self._closed = True
        for i, conn in enumerate(self._conns):
            if i in self._dead:
                continue
            try:
                conn.send(("shutdown", None))
            except (OSError, ValueError):
                pass
        for proc in self._procs:
            proc.join(timeout=5.0)
        for proc in self._procs:
            if proc.is_alive():  # pragma: no cover - stuck worker
                proc.terminate()
        for proc in self._procs:
            if proc.is_alive():  # pragma: no cover - stuck worker
                proc.join(timeout=5.0)
        for conn in self._conns:
            try:
                conn.close()
            except OSError:  # pragma: no cover - already closed
                pass

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()
