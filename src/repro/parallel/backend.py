"""The process execution backend: parent-side round orchestration.

:class:`ProcessBackend` is the object ``PpmRuntime`` delegates to when
``executor="process"``.  The division of labour keeps the bitwise
contract trivially auditable:

* **workers** run the VP generators (the only part of a PPM program
  that needs real cores) against mapped shared-memory snapshots and
  ship back compact recordings — per-VP costs/declarations, row specs,
  buffered write operations, collective contributions;
* the **parent** replays those recordings into an ordinary
  :class:`~repro.core.phase.PhaseRecorder` in global-VP-rank order and
  then runs the *unchanged* commit, bundling, timing, tracing and
  sanitizer pipeline.  Every float accumulates in the same order and
  every buffered op applies through the same engine as the inline
  executor, so committed arrays and simulated clocks are
  bitwise-identical (property-tested in ``tests/parallel``).

Shards are contiguous global-rank ranges, one per worker, so
concatenating worker reports in worker order *is* VP-rank order.
A phase round costs exactly one command round-trip per worker — node
phases that are concurrently ready dispatch as a single round.
"""

from __future__ import annotations

import os
import pickle

from repro.core.collectives import CollectiveSlot
from repro.core.constructs import PhaseDecl
from repro.core.errors import ParallelConfigError, PhaseUsageError
from repro.core.shared import NodeShared, RowSpec, WriteEvent
from repro.obs.events import WorkerSpan
from repro.parallel.pool import WorkerPool


def default_workers() -> int:
    """Worker count used when ``run_ppm(..., workers=None)``: the CPU
    count, clamped to [2, 8] (beyond 8, pipe traffic outweighs extra
    cores for typical phase bodies)."""
    return max(2, min(8, os.cpu_count() or 2))


class ProcessBackend:
    """Parent half of the ``executor="process"`` engine."""

    def __init__(self, runtime) -> None:
        self.rt = runtime
        self.n_workers = runtime.workers or default_workers()
        self._pool = WorkerPool(
            self.n_workers, {"config": runtime.cluster.config}
        )
        # Per-do decode state (reset by start_do).
        self._vp_index: dict = {}
        self._arrays: list[dict] = []
        self._specs: list[dict] = []
        self._range_specs: dict = {}
        self._decls: dict = {}
        self._coll_outbox: list = []
        self._global_reports = None
        self._node_reports = None

    # ==================================================================
    # do lifecycle
    # ==================================================================
    def start_do(self, counts, funcs, args, kwargs, default_decl, vps_by_node):
        """Ship the kernel, shared-segment map and VP shards."""
        rt = self.rt
        # Segment names shipped below are current; earlier swaps are
        # irrelevant to workers that are only now attaching.
        rt.shm.drain_remaps()
        try:
            blob = pickle.dumps(
                (funcs, args, kwargs), protocol=pickle.HIGHEST_PROTOCOL
            )
        except Exception as exc:
            raise ParallelConfigError(
                "executor='process' ships the PPM function and its "
                f"arguments to worker processes, but pickling failed: "
                f"{exc!r}.  Use module-level functions and picklable "
                "arguments (lambdas and locally-defined closures are not)",
                code="PPM501",
            ) from exc
        shared_specs = []
        for name, sv in rt.shared_registry.items():
            if isinstance(sv, NodeShared):
                segs = [
                    (node_id, rt.shm.segment_of(name, node_id))
                    for node_id in range(rt.cluster.n_nodes)
                ]
                shared_specs.append((name, "node", sv.shape, sv.dtype, segs))
            else:
                shared_specs.append(
                    (name, "global", sv.shape, sv.dtype,
                     rt.shm.segment_of(name, None))
                )
        common = {
            "hot_path": rt.hot_path,
            "kernel": blob,
            "counts": list(counts),
            "default_decl": (default_decl.kind, default_decl.latency_rounds),
            "shared": shared_specs,
        }
        total = sum(counts)
        w = self.n_workers
        payloads = [
            {
                "common": common,
                "shard": ((i * total) // w, ((i + 1) * total) // w),
            }
            for i in range(w)
        ]
        self._vp_index = {
            vp.ctx.global_rank: vp
            for node_vps in vps_by_node
            for vp in node_vps
        }
        self._arrays = [{} for _ in range(w)]
        self._specs = [{} for _ in range(w)]
        self._range_specs = {}
        self._decls = {}
        self._coll_outbox = []
        self._global_reports = None
        self._node_reports = None
        self._pool.roundtrip("do_start", None, per_worker=payloads)

    def run_prologue(self, vps_by_node) -> None:
        """Run every VP to its first phase declaration, worker-side."""
        for states in self._pool.roundtrip("prologue", None):
            if states is None:
                continue
            for grank, done, decl, _cost in states:
                self._apply_state(self._vp_index[grank], done, decl)

    def end_do(self) -> None:
        """Release per-do worker state; best-effort because this runs
        in the ``finally`` of ``do`` with any real error propagating."""
        self._pool.best_effort("do_end", None)
        self.rt.shm.sweep()
        self._global_reports = None
        self._node_reports = None
        self._coll_outbox = []

    def close(self) -> None:
        self._pool.close()

    # ==================================================================
    # Phase rounds
    # ==================================================================
    def begin_round(self, kind: str, nodes, vps_by_node) -> None:
        """Dispatch one phase round to the workers and stash their
        reports for :meth:`fill_recorder`."""
        rt = self.rt
        body_vps = [vp for n in nodes for vp in vps_by_node[n]]
        core_map = None
        if rt.config.load_balancing:
            # The parent owns the (deterministic, cost-history-based)
            # LPT packing; workers receive the resulting map so VP code
            # observes the same ctx.core_id as inline execution.
            rt._assign_cores(body_vps)
            core_map = {
                vp.ctx.global_rank: vp.ctx.core_id
                for vp in body_vps
                if not vp.done
            }
        cmd = {
            "kind": kind,
            "nodes": list(nodes),
            "coll_results": self._coll_outbox,
            "remaps": rt.shm.drain_remaps(),
            "core_map": core_map,
        }
        self._coll_outbox = []
        replies = self._pool.roundtrip("round", cmd)
        # Merge snapshot-view flags before any commit of this round so
        # the copy-on-commit guard sees worker-held views.
        registry = rt.shared_registry
        for rep in replies:
            if rep is None:
                continue
            for name, instance in rep["views"]:
                sv = registry[name]
                if instance is None:
                    sv._views_taken = True
                else:
                    sv._views_taken[instance] = True
        if kind == "global":
            self._global_reports = [
                (w, rep["report"])
                for w, rep in enumerate(replies)
                if rep is not None
            ]
            self._node_reports = None
        else:
            node_map: dict[int, list] = {}
            for w, rep in enumerate(replies):
                if rep is None:
                    continue
                for node_id, report in rep["nodes"]:
                    node_map.setdefault(node_id, []).append((w, report))
            self._node_reports = node_map
            self._global_reports = None
        tr = rt.tracer
        if tr is not None:
            phase_index = rt.stats_global_phases + rt.stats_node_phases
            for w, rep in enumerate(replies):
                if rep is None:
                    continue
                tr.emit(
                    WorkerSpan(
                        phase=phase_index,
                        worker=w,
                        vps=rep["advanced"],
                        host_s=rep["host_s"],
                    )
                )

    def fill_recorder(self, recorder, vps) -> None:
        """Replay this round's worker reports for ``vps`` into the
        parent recorder — the process-mode body of
        ``_execute_phase_bodies``, reproducing its exact rec ordering
        and float-accumulation structure."""
        if self._global_reports is not None:
            reports = self._global_reports
            self._global_reports = None
        else:
            node_id = vps[0].ctx.node_id
            reports = self._node_reports.pop(node_id, [])
        by_rank: dict[int, tuple] = {}
        for w, rep in reports:
            self._merge_report(recorder, w, rep, by_rank)
        tr = recorder.tracer
        core_costs = recorder.core_costs
        run_node = -1
        inner = None
        for vp in vps:
            if vp.done:
                continue
            ctx = vp.ctx
            done, decl, cost = by_rank[ctx.global_rank]
            if tr is not None:
                recorder.add_vp_cost(
                    ctx.node_id, ctx.core_id, cost, vp=ctx.global_rank
                )
            elif cost:
                if ctx.node_id != run_node:
                    run_node = ctx.node_id
                    inner = core_costs[run_node]
                core = ctx.core_id
                inner[core] = inner.get(core, 0.0) + cost
            vp.last_cost = cost
            self._apply_state(vp, done, decl)

    def harvest_collectives(self, recorder, node_key) -> None:
        """Queue the round's resolved collective results for broadcast
        with the next round command (worker-held handles resolve from
        them).  ``node_key`` is ``None`` for a global phase, the node
        id for a node phase."""
        slots = recorder.collective_slots
        if not slots:
            return
        results = []
        for slot in slots:
            if slot.kind == "reduce":
                payload = slot.entries[0][2]._value if slot.entries else None
            else:  # scan: per-contributor prefix, keyed by global rank
                payload = {
                    rank: handle._value for rank, _v, handle in slot.entries
                }
            results.append((slot.kind, payload))
        self._coll_outbox.append((node_key, results))

    # ==================================================================
    # Report decoding
    # ==================================================================
    def _apply_state(self, vp, done: bool, decl) -> None:
        if done:
            vp.done = True
            vp.decl = None
        else:
            vp.decl = self._decl(decl)
            vp.phase_index += 1

    def _decl(self, key) -> PhaseDecl:
        decl = self._decls.get(key)
        if decl is None:
            decl = self._decls[key] = PhaseDecl(key[0], latency_rounds=key[1])
        return decl

    def _array(self, w: int, enc):
        if enc[0] == "n":
            _tag, iid, arr = enc
            self._arrays[w][iid] = arr
            return arr
        return self._arrays[w][enc[1]]

    def _spec(self, w: int, enc) -> RowSpec:
        if enc[0] == "R":
            _tag, start, stop, step = enc
            key = (start, stop, step)
            spec = self._range_specs.get(key)
            if spec is None:
                spec = self._range_specs[key] = RowSpec(start, stop, step)
            return spec
        arr_enc = enc[1]
        iid = arr_enc[1]
        # Interned per (worker, id): iterative kernels reuse the same
        # index arrays phase after phase, so the parent presents stable
        # RowSpec objects to the bundling memo — the same cache-hit
        # behaviour the inline fast path gets from its access cache.
        spec = self._specs[w].get(iid)
        if spec is None:
            spec = self._specs[w][iid] = RowSpec.from_array(
                self._array(w, arr_enc)
            )
        elif arr_enc[0] == "n":
            self._array(w, arr_enc)  # keep the decode table consistent
        return spec

    def _idx(self, w: int, enc):
        tag, payload = enc
        if tag == "a":
            return self._array(w, payload)
        return payload

    def _merge_report(self, recorder, w: int, rep: dict, by_rank: dict) -> None:
        registry = self.rt.shared_registry
        recorder.absorb_global_reads(
            (node_id, registry[name],
             [self._spec(w, e) for e in specs], n_elem)
            for node_id, name, specs, n_elem in rep["greads"]
        )
        recorder.absorb_global_writes(
            (node_id, registry[name],
             [self._spec(w, e) for e in specs], n_elem)
            for node_id, name, specs, n_elem in rep["gwrites"]
        )
        recorder.absorb_ops(
            WriteEvent(
                registry[name], instance, op_kind, op,
                self._idx(w, idx_enc), value, self._spec(w, spec_enc),
                rank, rows_exact,
            )
            for name, instance, op_kind, op, idx_enc, value, spec_enc,
                rank, rows_exact in rep["ops"]
        )
        for node_id, n_elem in rep["nwe"].items():
            recorder.node_write_elems[node_id] += n_elem
        recorder.node_read_ops += rep["nro"]
        recorder.node_read_elems += rep["nre"]
        slots = recorder.collective_slots
        for i, kind, op, entries in rep["colls"]:
            while len(slots) <= i:
                slots.append(CollectiveSlot(kind, op))
            slot = slots[i]
            # Cross-worker compatibility: kinds must match; ops compare
            # by equality only when comparable (unpickled callables are
            # distinct objects, and each worker already enforced
            # intra-worker compatibility).
            if kind != slot.kind or (
                (isinstance(op, str) or isinstance(slot.op, str))
                and op != slot.op
            ):
                raise PhaseUsageError(
                    f"mismatched phase collectives across workers: slot {i} "
                    f"is {slot.kind!r}/{slot.op!r}, a worker recorded "
                    f"{kind!r}/{op!r}"
                )
            for rank, value in entries:
                slot.add(rank, value)
        for grank, done, decl, cost in rep["vps"]:
            by_rank[grank] = (done, decl, cost)
