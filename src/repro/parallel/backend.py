"""The process execution backend: parent-side round orchestration.

:class:`ProcessBackend` is the object ``PpmRuntime`` delegates to when
``executor="process"``.  The division of labour keeps the bitwise
contract trivially auditable:

* **workers** run the VP generators (the only part of a PPM program
  that needs real cores) against mapped shared-memory snapshots and
  ship back compact recordings — per-VP costs/declarations, row specs,
  buffered write operations, collective contributions;
* the **parent** replays those recordings into an ordinary
  :class:`~repro.core.phase.PhaseRecorder` in global-VP-rank order and
  then runs the *unchanged* commit, bundling, timing, tracing and
  sanitizer pipeline.  Every float accumulates in the same order and
  every buffered op applies through the same engine as the inline
  executor, so committed arrays and simulated clocks are
  bitwise-identical (property-tested in ``tests/parallel``).

Shards are contiguous global-rank ranges, one per worker, so
concatenating worker reports in worker order *is* VP-rank order.
A phase round costs exactly one command round-trip per worker — node
phases that are concurrently ready dispatch as a single round.
"""

from __future__ import annotations

import os
import pickle
import zlib

import numpy as np

from repro.core.collectives import CollectiveSlot
from repro.core.constructs import PhaseDecl
from repro.core.errors import ParallelConfigError, PhaseUsageError
from repro.core.shared import NodeShared, RowSpec, WriteEvent
from repro.obs.events import WorkerSpan, ZeroMergeCommit
from repro.parallel.pool import WorkerPool


def default_workers() -> int:
    """Worker count used when ``run_ppm(..., workers=None)``: the CPU
    count, clamped to [2, 8] (beyond 8, pipe traffic outweighs extra
    cores for typical phase bodies)."""
    return max(2, min(8, os.cpu_count() or 2))


#: Zero-merge / plan-cache statistics of the most recently finished
#: ``do`` of a process-backend run, published for the wall-clock bench
#: (``--executor process`` reports plan-cache hit rate and merge bytes
#: avoided from here).  Keys: ``zm_rounds``, ``zm_ops``,
#: ``bytes_avoided``, ``plan_hits``, ``plan_misses``, ``rec_rounds``.
LAST_RUN_STATS: dict = {}


class ProcessBackend:
    """Parent half of the ``executor="process"`` engine."""

    def __init__(self, runtime) -> None:
        self.rt = runtime
        self.n_workers = runtime.workers or default_workers()
        self._pool = WorkerPool(
            self.n_workers, {"config": runtime.cluster.config}
        )
        # Worker supervision (crash recovery): the supervisor logs the
        # dispatched commands and the pool hands it detected failures.
        self.supervisor = None
        if getattr(runtime, "supervision", None) is not None:
            from repro.parallel.supervisor import (
                SupervisionState,
                WorkerSupervisor,
            )

            state = runtime.supervision_state
            if state is None:
                state = SupervisionState()
            self.supervisor = WorkerSupervisor(
                self, runtime.supervision, state
            )
            self.supervisor.pool = self._pool
            self._pool.supervisor = self.supervisor
        # Per-do decode state (reset by start_do).
        self._vp_index: dict = {}
        self._arrays: list[dict] = []
        self._specs: list[dict] = []
        self._range_specs: dict = {}
        self._decls: dict = {}
        self._coll_outbox: list = []
        self._global_reports = None
        self._node_reports = None
        # Record-structure plan cache, parent half: per (worker, plan
        # id) -> the encoded rec subset a later "rec_plan" reference
        # resolves to.
        self._rec_cache: list[dict] = []
        # Zero-merge round state (reset by begin_round).
        self._hold_ok = False
        self._hold = False
        self._round_flags: dict = {}
        self._hold_wtargets: dict = {}
        self._commit_replies: dict | None = None
        # Digest verification: recompute each worker's committed-rows
        # checksum parent-side (tests and CI set this; costs a gather
        # per target per round, so it is opt-in).
        self._verify = bool(os.environ.get("PPM_ZERO_MERGE_VERIFY"))
        # Cumulative zero-merge statistics (published to LAST_RUN_STATS
        # at each do boundary).
        self.zm_rounds = 0
        self.zm_ops = 0
        self.zm_bytes_avoided = 0
        self.plan_hits = 0
        self.plan_misses = 0

    # ==================================================================
    # do lifecycle
    # ==================================================================
    def start_do(self, counts, funcs, args, kwargs, default_decl, vps_by_node):
        """Ship the kernel, shared-segment map and VP shards."""
        rt = self.rt
        # Segment names shipped below are current; earlier swaps are
        # irrelevant to workers that are only now attaching.
        rt.shm.drain_remaps()
        try:
            blob = pickle.dumps(
                (funcs, args, kwargs), protocol=pickle.HIGHEST_PROTOCOL
            )
        except Exception as exc:
            raise ParallelConfigError(
                "executor='process' ships the PPM function and its "
                f"arguments to worker processes, but pickling failed: "
                f"{exc!r}.  Use module-level functions and picklable "
                "arguments (lambdas and locally-defined closures are not)",
                code="PPM501",
            ) from exc
        common = {
            "hot_path": rt.hot_path,
            "kernel": blob,
            "counts": list(counts),
            "default_decl": (default_decl.kind, default_decl.latency_rounds),
            "shared": self._shared_specs(),
            # Workers rebuild the kernel certificate from their own
            # unpickled copy (the analysis is a pure function of source
            # + argument classification): the parent cannot check
            # suspended frames that live in the workers.
            "certify": rt._active_cert is not None,
        }
        # A round may hold its operations worker-side (zero-merge
        # commit) only when a certificate exists and the commit
        # pipeline has no stage that must see the operation stream
        # parent-side before writes apply.
        self._hold_ok = (
            rt._active_cert is not None
            and rt.zero_merge
            and (rt.sanitizer is None or rt.sanitize_auto)
            and rt.commit_engine == "vectorized"
        )
        total = sum(counts)
        w = self.n_workers
        payloads = [
            {
                "common": common,
                "shard": ((i * total) // w, ((i + 1) * total) // w),
            }
            for i in range(w)
        ]
        self._vp_index = {
            vp.ctx.global_rank: vp
            for node_vps in vps_by_node
            for vp in node_vps
        }
        self._arrays = [{} for _ in range(w)]
        self._specs = [{} for _ in range(w)]
        self._range_specs = {}
        self._decls = {}
        self._coll_outbox = []
        self._global_reports = None
        self._node_reports = None
        self._rec_cache = [{} for _ in range(w)]
        self._round_flags = {}
        self._hold_wtargets = {}
        self._commit_replies = None
        if self.supervisor is not None:
            self.supervisor.begin_do(common, payloads)
        self._pool.roundtrip("do_start", None, per_worker=payloads)

    def _shared_specs(self, overrides=None) -> list:
        """The shared-variable -> segment map shipped with do_start.

        ``overrides`` maps ``(name, instance)`` to a segment name that
        replaces the registry's current one — the supervisor passes the
        *retained* pre-swap names here when respawning a worker inside
        a zero-merge commit window, so the replacement replays against
        the pristine pre-commit state."""
        rt = self.rt
        overrides = overrides or {}

        def seg(name, instance):
            hit = overrides.get((name, instance))
            return hit if hit is not None else rt.shm.segment_of(name, instance)

        specs = []
        for name, sv in rt.shared_registry.items():
            if isinstance(sv, NodeShared):
                segs = [
                    (node_id, seg(name, node_id))
                    for node_id in range(rt.cluster.n_nodes)
                ]
                specs.append((name, "node", sv.shape, sv.dtype, segs))
            else:
                specs.append(
                    (name, "global", sv.shape, sv.dtype, seg(name, None))
                )
        return specs

    def reset_worker_decode(self, w: int) -> None:
        """Drop worker ``w``'s decode interning tables (respawn: the
        replacement's ``id()`` values can collide with the dead
        worker's, so a stale cached spec would silently alias)."""
        self._arrays[w] = {}
        self._specs[w] = {}
        self._rec_cache[w] = {}

    def merge_views(self, views) -> None:
        """Merge a worker reply's snapshot-view flags into the
        registry's copy-on-commit guard."""
        registry = self.rt.shared_registry
        for name, instance in views:
            sv = registry[name]
            if instance is None:
                sv._views_taken = True
            else:
                sv._views_taken[instance] = True

    def run_prologue(self, vps_by_node) -> None:
        """Run every VP to its first phase declaration, worker-side."""
        for states in self._pool.roundtrip("prologue", None):
            if states is None:
                continue
            for grank, done, decl, _cost in states:
                self._apply_state(self._vp_index[grank], done, decl)

    def end_do(self) -> None:
        """Release per-do worker state; best-effort because this runs
        in the ``finally`` of ``do`` with any real error propagating."""
        self._pool.best_effort("do_end", None)
        self.rt.shm.release_retained()
        self.rt.shm.sweep()
        if self.supervisor is not None:
            self.supervisor.end_do()
        self._global_reports = None
        self._node_reports = None
        self._coll_outbox = []
        self._commit_replies = None
        LAST_RUN_STATS.clear()
        LAST_RUN_STATS.update(
            zm_rounds=self.zm_rounds,
            zm_ops=self.zm_ops,
            bytes_avoided=self.zm_bytes_avoided,
            plan_hits=self.plan_hits,
            plan_misses=self.plan_misses,
        )

    def close(self) -> None:
        self._pool.close()

    # ==================================================================
    # Phase rounds
    # ==================================================================
    def begin_round(self, kind: str, nodes, vps_by_node) -> None:
        """Dispatch one phase round to the workers and stash their
        reports for :meth:`fill_recorder`."""
        rt = self.rt
        body_vps = [vp for n in nodes for vp in vps_by_node[n]]
        core_map = None
        if rt.config.load_balancing:
            # The parent owns the (deterministic, cost-history-based)
            # LPT packing; workers receive the resulting map so VP code
            # observes the same ctx.core_id as inline execution.
            rt._assign_cores(body_vps)
            core_map = {
                vp.ctx.global_rank: vp.ctx.core_id
                for vp in body_vps
                if not vp.done
            }
        hold = self._hold_ok
        cmd = {
            "kind": kind,
            "nodes": list(nodes),
            "coll_results": self._coll_outbox,
            "remaps": rt.shm.drain_remaps(),
            "core_map": core_map,
            # Speculative hold: certification flags only arrive with
            # the replies, so an eligible round always holds; rounds
            # that turn out uncertified fall back to shipping their
            # operations with the commit command.
            "mode": "hold" if hold else "ship",
        }
        self._hold = hold
        self._round_flags = {}
        self._hold_wtargets = {}
        self._commit_replies = None
        self._coll_outbox = []
        if self.supervisor is not None:
            self.supervisor.log_round(cmd)
        replies = self._pool.roundtrip("round", cmd)
        # Merge snapshot-view flags before any commit of this round so
        # the copy-on-commit guard sees worker-held views.
        for rep in replies:
            if rep is None:
                continue
            self.merge_views(rep["views"])
        flag_lists: dict = {}
        if kind == "global":
            self._global_reports = [
                (w, rep["report"])
                for w, rep in enumerate(replies)
                if rep is not None
            ]
            self._node_reports = None
            flag_lists[None] = [
                rep["flags"] for rep in replies if rep is not None
            ]
            if hold:
                self._gather_wtargets(
                    None, (rep["report"] for rep in replies if rep is not None)
                )
        else:
            node_map: dict[int, list] = {}
            for w, rep in enumerate(replies):
                if rep is None:
                    continue
                for node_id, report, flags in rep["nodes"]:
                    node_map.setdefault(node_id, []).append((w, report))
                    flag_lists.setdefault(node_id, []).append(flags)
                    if hold:
                        self._gather_wtargets(node_id, (report,))
            self._node_reports = node_map
            self._global_reports = None
        # Combine each group's per-worker flags: a worker with no
        # active VPs in the group reports (None, None) and abstains;
        # everyone else must agree for the round to count as certified
        # (resp. zero-merge eligible).
        for node_key, flags in flag_lists.items():
            voted = [f for f in flags if f[0] is not None]
            self._round_flags[node_key] = (
                bool(voted) and all(c for c, _z in voted),
                bool(voted) and all(z for _c, z in voted),
            )
        tr = rt.tracer
        if tr is not None:
            phase_index = rt.stats_global_phases + rt.stats_node_phases
            for w, rep in enumerate(replies):
                if rep is None:
                    continue
                tr.emit(
                    WorkerSpan(
                        phase=phase_index,
                        worker=w,
                        vps=rep["advanced"],
                        host_s=rep["host_s"],
                    )
                )

    def fill_recorder(self, recorder, vps) -> None:
        """Replay this round's worker reports for ``vps`` into the
        parent recorder — the process-mode body of
        ``_execute_phase_bodies``, reproducing its exact rec ordering
        and float-accumulation structure."""
        if self._global_reports is not None:
            reports = self._global_reports
            self._global_reports = None
        else:
            node_id = vps[0].ctx.node_id
            reports = self._node_reports.pop(node_id, [])
        by_rank: dict[int, tuple] = {}
        for w, rep in reports:
            self._merge_report(recorder, w, rep, by_rank)
        tr = recorder.tracer
        core_costs = recorder.core_costs
        run_node = -1
        inner = None
        for vp in vps:
            if vp.done:
                continue
            ctx = vp.ctx
            done, decl, cost = by_rank[ctx.global_rank]
            if tr is not None:
                recorder.add_vp_cost(
                    ctx.node_id, ctx.core_id, cost, vp=ctx.global_rank
                )
            elif cost:
                if ctx.node_id != run_node:
                    run_node = ctx.node_id
                    inner = core_costs[run_node]
                core = ctx.core_id
                inner[core] = inner.get(core, 0.0) + cost
            vp.last_cost = cost
            self._apply_state(vp, done, decl)

    def _gather_wtargets(self, node_key, reports) -> None:
        acc = self._hold_wtargets.setdefault(node_key, set())
        for report in reports:
            acc.update(report.get("wtargets", ()))

    def round_certified(self, node_key) -> bool:
        """Did every worker with active VPs in this group sit at a
        certified yield when the round began?  (The parent cannot
        inspect the suspended frames itself — they live in the
        workers.)"""
        return self._round_flags.get(node_key, (False, False))[0]

    def finish_commit(self, recorder, node_key) -> None:
        """Resolve a held round's commit for ``node_key``.

        No-op for ship-mode rounds (operations already arrived with the
        round replies).  For a held round, the *first* call runs the
        single commit round-trip covering every group of the round:
        zero-merge-eligible groups commit worker-side (their reply is a
        fixed-size digest and ``recorder.write_ops`` stays empty);
        ineligible groups fall back to shipping their operation stream
        here, absorbed into the recorder exactly as a ship-mode round
        would have — the sanitizer and the parent's ordinary
        rank-ordered commit then run unchanged.

        Node phases of one round are committed together: their targets
        are disjoint by construction (node phases write only their own
        node's instances), and the paper leaves cross-node commit order
        within an asynchronous round unspecified.
        """
        if not self._hold:
            return
        if self._commit_replies is None:
            self._run_commit_round()
        rt = self.rt
        registry = rt.shared_registry
        tr = rt.tracer
        total_ops = 0
        total_bytes = 0
        total_hits = 0
        total_misses = 0
        workers = 0
        for w, d in self._commit_replies.pop(node_key, []):
            ops = d.get("ops")
            if ops is not None:
                recorder.absorb_ops(
                    WriteEvent(
                        registry[name], instance, op_kind, op,
                        self._idx(w, idx_enc), value, self._spec(w, spec_enc),
                        rank, rows_exact,
                    )
                    for name, instance, op_kind, op, idx_enc, value,
                        spec_enc, rank, rows_exact in ops
                )
                continue
            n = d.get("ops_n", 0)
            if not n:
                continue
            workers += 1
            total_ops += n
            total_bytes += d.get("bytes_avoided", 0)
            total_hits += d.get("plan_hits", 0)
            total_misses += d.get("plan_misses", 0)
            if self._verify:
                self._verify_digest(w, d)
        if total_ops:
            self.zm_rounds += 1
            self.zm_ops += total_ops
            self.zm_bytes_avoided += total_bytes
            self.plan_hits += total_hits
            self.plan_misses += total_misses
            if tr is not None:
                tr.emit(
                    ZeroMergeCommit(
                        phase=rt.stats_global_phases + rt.stats_node_phases,
                        node=-1 if node_key is None else node_key,
                        workers=workers,
                        ops=total_ops,
                        plan_hits=total_hits,
                        plan_misses=total_misses,
                        bytes_avoided=total_bytes,
                    )
                )

    def _run_commit_round(self) -> None:
        """The round's single commit round-trip, covering every held
        group: decide local-vs-ship per group, pre-swap aliased targets
        of locally-committed groups (copy-on-commit must happen
        *before* any worker writes), and ship the resulting remaps with
        the decisions."""
        rt = self.rt
        registry = rt.shared_registry
        # Under supervision every local-commit target swaps (force) and
        # the superseded segment stays attachable (retain): should a
        # worker die mid-commit, its replacement re-attaches the
        # pristine pre-commit copy and replays from it — in-place
        # accumulates are not idempotent, so a partial apply by the
        # dead worker must be overwritten, not re-applied.
        supervised = self.supervisor is not None
        prune = rt._prune_names
        groups = []
        for node_key, (_certified, zero_merge) in sorted(
            self._round_flags.items(),
            key=lambda kv: -1 if kv[0] is None else kv[0],
        ):
            decision = "local" if zero_merge else "ship"
            if decision == "local":
                for name, instance in sorted(
                    self._hold_wtargets.get(node_key, ()),
                    key=lambda t: (t[0], -1 if t[1] is None else t[1]),
                ):
                    # Pruned targets skip the pre-swap: the workers
                    # commit straight into the live segment, and no
                    # remap ships (the certificate proves no worker
                    # view outlives its segment).  Supervised commits
                    # never prune — the swapped copy is crash-replay
                    # state.
                    registry[name]._commit_target(
                        instance,
                        force=supervised,
                        retain=supervised,
                        prune=not supervised and name in prune,
                    )
            groups.append((node_key, decision))
        cmd = {
            "remaps": rt.shm.drain_remaps(),
            "groups": groups,
            "verify": self._verify,
        }
        if supervised:
            self.supervisor.log_commit(cmd)
        replies = self._pool.roundtrip("commit", cmd)
        if supervised:
            rt.shm.release_retained()
        merged: dict = {}
        for w, rep in enumerate(replies):
            if rep is None:
                continue
            for node_key, d in rep["groups"]:
                merged.setdefault(node_key, []).append((w, d))
        self._commit_replies = merged

    def _verify_digest(self, w: int, digest: dict) -> None:
        registry = self.rt.shared_registry
        for name, instance, crc, rows_enc in digest.get("checksums", ()):
            if rows_enc is None:
                continue
            rows = self._array(w, rows_enc)
            sv = registry[name]
            target = sv._data if instance is None else sv._data[instance]
            here = zlib.crc32(np.ascontiguousarray(target[rows]).tobytes())
            if here != crc:
                raise RuntimeError(
                    f"zero-merge digest mismatch on {name!r}"
                    f"{'' if instance is None else f'[{instance}]'}: "
                    f"worker {w} committed crc32={crc:#010x}, parent "
                    f"reads {here:#010x} over the same rows — the "
                    "conflict-freedom certificate did not hold"
                )

    def harvest_collectives(self, recorder, node_key) -> None:
        """Queue the round's resolved collective results for broadcast
        with the next round command (worker-held handles resolve from
        them).  ``node_key`` is ``None`` for a global phase, the node
        id for a node phase."""
        slots = recorder.collective_slots
        if not slots:
            return
        results = []
        for slot in slots:
            if slot.kind == "reduce":
                payload = slot.entries[0][2]._value if slot.entries else None
            else:  # scan: per-contributor prefix, keyed by global rank
                payload = {
                    rank: handle._value for rank, _v, handle in slot.entries
                }
            results.append((slot.kind, payload))
        self._coll_outbox.append((node_key, results))

    # ==================================================================
    # Report decoding
    # ==================================================================
    def _apply_state(self, vp, done: bool, decl) -> None:
        if done:
            vp.done = True
            vp.decl = None
        else:
            vp.decl = self._decl(decl)
            vp.phase_index += 1

    def _decl(self, key) -> PhaseDecl:
        decl = self._decls.get(key)
        if decl is None:
            decl = self._decls[key] = PhaseDecl(key[0], latency_rounds=key[1])
        return decl

    def _array(self, w: int, enc):
        if enc[0] == "n":
            _tag, iid, arr = enc
            self._arrays[w][iid] = arr
            return arr
        return self._arrays[w][enc[1]]

    def _spec(self, w: int, enc) -> RowSpec:
        if enc[0] == "R":
            _tag, start, stop, step = enc
            key = (start, stop, step)
            spec = self._range_specs.get(key)
            if spec is None:
                spec = self._range_specs[key] = RowSpec(start, stop, step)
            return spec
        arr_enc = enc[1]
        iid = arr_enc[1]
        # Interned per (worker, id): iterative kernels reuse the same
        # index arrays phase after phase, so the parent presents stable
        # RowSpec objects to the bundling memo — the same cache-hit
        # behaviour the inline fast path gets from its access cache.
        spec = self._specs[w].get(iid)
        if spec is None:
            spec = self._specs[w][iid] = RowSpec.from_array(
                self._array(w, arr_enc)
            )
        elif arr_enc[0] == "n":
            self._array(w, arr_enc)  # keep the decode table consistent
        return spec

    def _idx(self, w: int, enc):
        tag, payload = enc
        if tag == "a":
            return self._array(w, payload)
        return payload

    def _merge_report(self, recorder, w: int, rep: dict, by_rank: dict) -> None:
        registry = self.rt.shared_registry
        # Resolve the record structure: an exact cross-round repeat
        # arrives as a plan reference instead of the full payload.
        pid = rep.get("rec_plan")
        if pid is not None:
            recs = self._rec_cache[w][pid]
        else:
            recs = rep
            pid = rep.get("rec_new")
            if pid is not None:
                self._rec_cache[w][pid] = {
                    k: rep[k] for k in ("greads", "gwrites", "nwe", "nro", "nre")
                }
        # Decode the operation stream *first*: the worker encodes ops
        # before the read/write records, so an index array's first
        # mention (the ``("n", iid, arr)`` form later records reference
        # by id) can live only there.  Held rounds have no ops here —
        # they ship theirs with the commit reply, which the worker also
        # encodes last.
        ops = rep.get("ops")
        if ops is not None:
            recorder.absorb_ops(
                WriteEvent(
                    registry[name], instance, op_kind, op,
                    self._idx(w, idx_enc), value, self._spec(w, spec_enc),
                    rank, rows_exact,
                )
                for name, instance, op_kind, op, idx_enc, value, spec_enc,
                    rank, rows_exact in ops
            )
        recorder.absorb_global_reads(
            (node_id, registry[name],
             [self._spec(w, e) for e in specs], n_elem)
            for node_id, name, specs, n_elem in recs["greads"]
        )
        recorder.absorb_global_writes(
            (node_id, registry[name],
             [self._spec(w, e) for e in specs], n_elem)
            for node_id, name, specs, n_elem in recs["gwrites"]
        )
        for node_id, n_elem in recs["nwe"].items():
            recorder.node_write_elems[node_id] += n_elem
        recorder.node_read_ops += recs["nro"]
        recorder.node_read_elems += recs["nre"]
        slots = recorder.collective_slots
        for i, kind, op, entries in rep["colls"]:
            while len(slots) <= i:
                slots.append(CollectiveSlot(kind, op))
            slot = slots[i]
            # Cross-worker compatibility: kinds must match; ops compare
            # by equality only when comparable (unpickled callables are
            # distinct objects, and each worker already enforced
            # intra-worker compatibility).
            if kind != slot.kind or (
                (isinstance(op, str) or isinstance(slot.op, str))
                and op != slot.op
            ):
                raise PhaseUsageError(
                    f"mismatched phase collectives across workers: slot {i} "
                    f"is {slot.kind!r}/{slot.op!r}, a worker recorded "
                    f"{kind!r}/{op!r}"
                )
            for rank, value in entries:
                slot.add(rank, value)
        for grank, done, decl, cost in rep["vps"]:
            by_rank[grank] = (done, decl, cost)
