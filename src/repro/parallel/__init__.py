"""repro.parallel — the multi-process PPM execution backend.

``run_ppm(..., executor="process", workers=N)`` runs phase bodies on
real cores: the committed store of every shared variable lives in
:mod:`multiprocessing.shared_memory` segments, worker processes map
those segments zero-copy and advance contiguous global-rank shards of
the VPs, and each phase round returns compact access/write/collective
records that the parent merges through the unchanged commit, bundling
and timing pipeline.  Committed arrays, simulated times and traces are
bitwise-identical to the default ``executor="inline"`` engine (see
docs/PARALLEL.md).

Public surface
--------------
* :class:`~repro.parallel.shm.ShmRegistry` — parent-side shared-memory
  segment registry with leak-proof cleanup;
* :class:`~repro.parallel.pool.WorkerPool` — the persistent worker
  process pool and its command pipe protocol;
* :class:`~repro.parallel.backend.ProcessBackend` — the runtime
  execution backend gluing the two into phase rounds;
* :func:`~repro.parallel.backend.default_workers` — the worker count
  used when ``workers=None``;
* :class:`~repro.parallel.supervisor.SupervisionPolicy` /
  :class:`~repro.parallel.supervisor.WorkerSupervisor` — fault-tolerant
  worker pool: crash/hang detection, respawn-and-replay recovery and
  graceful degradation (``run_ppm(..., supervision=...)``);
* :class:`~repro.parallel.supervisor.ProcessChaos` — deterministic
  real-process fault injection (SIGKILL/SIGSTOP at round boundaries)
  for exercising the supervisor.

Configuration errors raise
:class:`~repro.core.errors.ParallelConfigError` with ``PPM5xx``/
``PPM6xx`` codes; an unsupervised worker death raises
:class:`~repro.core.errors.WorkerDeathError` (``PPM603``) and an
exhausted respawn budget under ``degrade="error"`` raises
:class:`~repro.core.errors.SupervisionExhaustedError` (``PPM604``)
(docs/DIAGNOSTICS.md).
"""

from repro.core.errors import (
    ParallelConfigError,
    ParallelError,
    ParallelExecutionError,
    SupervisionExhaustedError,
    WorkerDeathError,
)
from repro.parallel.backend import ProcessBackend, default_workers
from repro.parallel.pool import WorkerPool
from repro.parallel.shm import ShmRegistry, live_ppm_segments
from repro.parallel.supervisor import (
    ProcessChaos,
    SupervisionPolicy,
    SupervisionState,
    WorkerSupervisor,
)

__all__ = [
    "ParallelConfigError",
    "ParallelError",
    "ParallelExecutionError",
    "ProcessBackend",
    "ProcessChaos",
    "ShmRegistry",
    "SupervisionExhaustedError",
    "SupervisionPolicy",
    "SupervisionState",
    "WorkerPool",
    "WorkerSupervisor",
    "default_workers",
    "live_ppm_segments",
]
