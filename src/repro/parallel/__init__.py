"""repro.parallel — the multi-process PPM execution backend.

``run_ppm(..., executor="process", workers=N)`` runs phase bodies on
real cores: the committed store of every shared variable lives in
:mod:`multiprocessing.shared_memory` segments, worker processes map
those segments zero-copy and advance contiguous global-rank shards of
the VPs, and each phase round returns compact access/write/collective
records that the parent merges through the unchanged commit, bundling
and timing pipeline.  Committed arrays, simulated times and traces are
bitwise-identical to the default ``executor="inline"`` engine (see
docs/PARALLEL.md).

Public surface
--------------
* :class:`~repro.parallel.shm.ShmRegistry` — parent-side shared-memory
  segment registry with leak-proof cleanup;
* :class:`~repro.parallel.pool.WorkerPool` — the persistent worker
  process pool and its command pipe protocol;
* :class:`~repro.parallel.backend.ProcessBackend` — the runtime
  execution backend gluing the two into phase rounds;
* :func:`~repro.parallel.backend.default_workers` — the worker count
  used when ``workers=None``.

Configuration errors raise
:class:`~repro.core.errors.ParallelConfigError` with ``PPM5xx`` codes
(docs/DIAGNOSTICS.md).
"""

from repro.core.errors import (
    ParallelConfigError,
    ParallelError,
    ParallelExecutionError,
)
from repro.parallel.backend import ProcessBackend, default_workers
from repro.parallel.pool import WorkerPool
from repro.parallel.shm import ShmRegistry, live_ppm_segments

__all__ = [
    "ParallelConfigError",
    "ParallelError",
    "ParallelExecutionError",
    "ProcessBackend",
    "ShmRegistry",
    "WorkerPool",
    "default_workers",
    "live_ppm_segments",
]
