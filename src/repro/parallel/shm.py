"""Shared-memory segment registry for the process execution backend.

The parent process owns one :class:`multiprocessing.shared_memory`
segment per shared-variable buffer (one for a :class:`GlobalShared`,
one per node instance for a :class:`NodeShared`).  Workers map the
segments by name — a phase snapshot is therefore *mapped*, never
pickled.  The registry is the single authority over segment lifetime:

* **allocate** — back a new shared array with a fresh segment;
* **swap** — the copy-on-commit guard of the process backend: when a
  commit is about to overwrite rows that live snapshot views (in the
  parent *or any worker*) alias, the committed store moves to a fresh
  segment and the old one is retired; workers learn the new name with
  the next round command, while their outstanding views keep the old
  mapping alive until they die;
* **sweep / close** — retired segments are closed as soon as no local
  view exports their buffer and *unlinked* unconditionally on
  ``close()``, so a crashed kernel, a ``KeyboardInterrupt`` or plain
  ``PPM.close()`` never leaks ``/dev/shm`` entries.  A
  ``weakref.finalize`` guard unlinks everything even if ``close`` is
  never called.

Segment names carry a per-registry prefix (``ppm-<pid>-<token>``) so
tests can assert leak-freedom by globbing ``/dev/shm``.
"""

from __future__ import annotations

import os
import secrets
import weakref

import numpy as np
from multiprocessing import shared_memory


def live_ppm_segments() -> list[str]:
    """Names of PPM-owned shared-memory segments currently in
    ``/dev/shm`` (test/diagnostic helper; empty where the OS exposes no
    such directory)."""
    try:
        entries = os.listdir("/dev/shm")
    except OSError:
        return []
    return sorted(e for e in entries if e.startswith("ppm-"))


class _Block:
    """One shared-array buffer and the segment backing it."""

    __slots__ = ("segment", "array")

    def __init__(self, segment: shared_memory.SharedMemory, array: np.ndarray) -> None:
        self.segment = segment
        self.array = array


def _as_array(segment: shared_memory.SharedMemory, shape, dtype) -> np.ndarray:
    return np.ndarray(shape, dtype=dtype, buffer=segment.buf)


#: Unlinked segments still pinned by a live view at registry close.
#: Parked here (instead of being dropped) so ``SharedMemory.__del__``
#: never runs while the buffer is exported; swept opportunistically.
_PINNED: list[shared_memory.SharedMemory] = []


def _sweep_pinned() -> None:
    still = []
    for segment in _PINNED:
        try:
            segment.close()
        except BufferError:
            still.append(segment)
    _PINNED[:] = still


def _unlink_once(segment: shared_memory.SharedMemory) -> None:
    """Unlink ``segment`` exactly once, no matter how many release
    paths reach it.

    ``SharedMemory.unlink()`` deregisters from the multiprocessing
    resource tracker only *after* ``shm_unlink`` succeeds — a second
    call raises ``FileNotFoundError`` first and skips the
    deregistration, and on interpreter shutdown the ``weakref.finalize``
    backstop can race an explicit ``close()`` onto the same segments,
    which used to surface as a spurious leaked-``/dev/shm`` warning
    from the tracker.  A per-segment guard flag makes every release
    path idempotent at the segment level."""
    if getattr(segment, "_ppm_unlinked", False):
        return
    segment._ppm_unlinked = True
    try:
        segment.unlink()
    except (FileNotFoundError, OSError):  # pragma: no cover - gone already
        pass


class ShmRegistry:
    """Parent-side owner of every segment of one PPM program."""

    def __init__(self) -> None:
        self.prefix = f"ppm-{os.getpid()}-{secrets.token_hex(3)}"
        self._counter = 0
        #: (shared name, instance) -> live :class:`_Block`.
        self._blocks: dict[tuple[str, int | None], _Block] = {}
        #: Superseded segments awaiting close (live views may pin them).
        self._graveyard: list[shared_memory.SharedMemory] = []
        #: Swapped-out blocks kept attachable for crash recovery
        #: (``swap(..., retain=True)``); released explicitly.
        self._retained: dict[tuple[str, int | None], _Block] = {}
        #: Remaps produced by :meth:`swap` since the last drain, in
        #: order: ``(shared name, instance, new segment name)``.
        self.pending_remaps: list[tuple[str, int | None, str]] = []
        self._closed = False
        # Unlink everything even if close() is never reached (e.g. the
        # driver process is torn down with a live PpmProgram).
        self._finalizer = weakref.finalize(
            self,
            ShmRegistry._unlink_all,
            self._blocks,
            self._graveyard,
            self._retained,
        )

    # ------------------------------------------------------------------
    def _new_segment(self, nbytes: int) -> shared_memory.SharedMemory:
        self._counter += 1
        name = f"{self.prefix}-{self._counter}"
        return shared_memory.SharedMemory(name=name, create=True, size=max(1, nbytes))

    def allocate(
        self, shared_name: str, instance: int | None, shape, dtype, fill
    ) -> np.ndarray:
        """A new shared array stored in a fresh segment."""
        dtype = np.dtype(dtype)
        nbytes = int(np.prod(shape, dtype=np.int64)) * dtype.itemsize
        segment = self._new_segment(nbytes)
        array = _as_array(segment, shape, dtype)
        if fill is not None:
            array[...] = fill
        self._blocks[(shared_name, instance)] = _Block(segment, array)
        return array

    def swap(
        self, shared_name: str, instance: int | None, *, retain: bool = False
    ) -> np.ndarray:
        """Move a block's committed store to a fresh segment (the
        copy-on-commit buffer swap), retiring the old one.  Returns the
        new array, already holding a copy of the old contents.

        With ``retain=True`` the superseded segment is *not* retired:
        it stays linked and attachable (under its old name) until
        :meth:`release_retained` runs.  The worker supervisor uses this
        during zero-merge commit rounds — a worker respawned mid-commit
        re-attaches the retained pre-commit segment and replays from
        that pristine copy (docs/PARALLEL.md)."""
        key = (shared_name, instance)
        block = self._blocks[key]
        old = block.array
        segment = self._new_segment(old.nbytes)
        array = _as_array(segment, old.shape, old.dtype)
        array[...] = old
        if retain:
            self._retained[key] = block
        else:
            self._retire(block)
        self._blocks[key] = _Block(segment, array)
        self.pending_remaps.append((shared_name, instance, segment.name))
        return array

    def retained_names(self) -> dict[tuple[str, int | None], str]:
        """Segment names of the retained (pre-commit) blocks, keyed by
        ``(shared name, instance)``."""
        return {
            key: block.segment.name for key, block in self._retained.items()
        }

    def release_retained(self) -> None:
        """Retire every block held back by ``swap(..., retain=True)``
        (the commit round they covered is over)."""
        for key in list(self._retained):
            self._retire(self._retained.pop(key))

    def segment_of(self, shared_name: str, instance: int | None) -> str:
        return self._blocks[(shared_name, instance)].segment.name

    def drain_remaps(self) -> list[tuple[str, int | None, str]]:
        remaps, self.pending_remaps = self.pending_remaps, []
        return remaps

    # ------------------------------------------------------------------
    def _retire(self, block: _Block) -> None:
        block.array = None
        segment = block.segment
        _unlink_once(segment)
        self._graveyard.append(segment)
        self.sweep()

    def sweep(self) -> None:
        """Close retired segments whose buffers nothing exports any
        more (a lingering driver-level view pins its segment until it
        dies; the name is already unlinked either way)."""
        still_pinned = []
        for segment in self._graveyard:
            try:
                segment.close()
            except BufferError:
                still_pinned.append(segment)
        self._graveyard[:] = still_pinned

    def close(self) -> None:
        """Unlink every segment this registry ever created.  Idempotent
        and exception-path safe: called from ``PPM.close()``, which
        ``run_ppm`` reaches via ``finally`` on crashes and
        ``KeyboardInterrupt`` alike."""
        if self._closed:
            return
        self._closed = True
        for block in self._retained.values():
            block.array = None
            _unlink_once(block.segment)
            self._graveyard.append(block.segment)
        self._retained.clear()
        for block in self._blocks.values():
            block.array = None
            _unlink_once(block.segment)
            self._graveyard.append(block.segment)
        self._blocks.clear()
        self.sweep()
        # A driver-held view can still export a buffer; the name is
        # gone already, so just park the segment until the view dies.
        _PINNED.extend(self._graveyard)
        self._graveyard.clear()
        _sweep_pinned()
        # Detach last: if close() is interrupted mid-unlink, the
        # finalize backstop still covers whatever remains (every path
        # is per-segment idempotent, so overlap is harmless).
        self._finalizer.detach()

    @staticmethod
    def _unlink_all(blocks, graveyard, retained=None) -> None:
        for block in blocks.values():
            _unlink_once(block.segment)
            graveyard.append(block.segment)
        blocks.clear()
        if retained:
            for block in retained.values():
                _unlink_once(block.segment)
                graveyard.append(block.segment)
            retained.clear()
        for segment in graveyard:
            try:
                segment.close()
            except BufferError:  # pragma: no cover - pinned by a view
                _PINNED.append(segment)
        graveyard.clear()


class WorkerSegmentCache:
    """Worker-side map of segment name -> attached array buffer.

    Workers only ever *attach* (``create=False``) and never unlink;
    dropping a cache entry releases the worker's mapping once its last
    snapshot view dies.  Re-attaching a still-current name after a
    ``do`` boundary is cheap (a ``shm_open`` + ``mmap``).
    """

    def __init__(self) -> None:
        self._segments: dict[str, shared_memory.SharedMemory] = {}

    def attach(self, segment_name: str, shape, dtype) -> np.ndarray:
        segment = self._segments.get(segment_name)
        if segment is None:
            segment = shared_memory.SharedMemory(name=segment_name, create=False)
            self._segments[segment_name] = segment
        return _as_array(segment, shape, dtype)

    def clear(self) -> None:
        """Drop all attachments (end of a ``do``); mappings pinned by
        still-live views survive until those views die."""
        self._segments.clear()
