"""Worker supervision for the process backend: failure detection,
crash recovery and graceful degradation.

The ``executor="process"`` pool of PRs 7–8 treated a dead worker as
fatal: a SIGKILLed, OOM-killed or hung child tore down the whole run.
This module turns every phase-round boundary into a *recovery point*
for the real multi-core path, mirroring what :mod:`repro.resilience`
already does for the simulated machine:

* **Detection** — :class:`~repro.parallel.pool.WorkerPool` polls each
  reply against a per-round deadline derived from the shard size
  (:meth:`SupervisionPolicy.round_deadline`).  A closed pipe classifies
  as ``"crash"``, a deadline overrun as ``"hang"`` (the parent then
  hard-kills the stuck child so the pipe cannot resynchronise on a
  stale reply), and a reply that fails to deserialise as
  ``"corrupt-reply"``.
* **Recovery** — the supervisor respawns the worker from the fork
  template, re-attaches it to the current (or, inside a zero-merge
  commit window, the *retained* pre-swap) shared-memory segments, and
  replays the logged round commands to rebuild the shard's generator
  state: replayed rounds run the real phase bodies but ship no report,
  collectives resolve from the logged results, and the interrupted
  command is then re-dispatched for real.  Committed arrays, simulated
  times and traces stay bitwise-identical to a fault-free inline run
  (property-tested in ``tests/parallel/test_supervisor.py``).
* **Degradation** — a bounded respawn budget with exponential backoff
  (reusing :class:`repro.resilience.retry.RetryPolicy` at host scale).
  When the budget is exhausted the run degrades instead of crashing:
  ``degrade="shrink"`` restarts with one worker fewer (reaching
  ``executor="inline"`` at one), ``degrade="inline"`` falls straight
  back to the inline engine, ``degrade="error"`` raises
  :class:`~repro.core.errors.SupervisionExhaustedError` (PPM604).

Replay soundness: a VP's *cross-phase* private state must derive from
phase collectives, ``ctx`` fields and the kernel's arguments — not
from values read out of shared snapshots in earlier phases.  All
shipped apps satisfy this (snapshots are phase-local by design in the
PPM model); the zero-merge replay matrix in docs/PARALLEL.md spells
out the contract.

Chaos testing: :class:`ProcessChaos` is a *real-process* fault
injector — it SIGKILLs or SIGSTOPs a live worker at chosen round or
commit boundaries, deterministically (seeded victim choice, fired
slots consumed so pool restarts never re-fire).  CI runs it via
``python -m repro.resilience chaos --executor process --small
--check``.
"""

from __future__ import annotations

import hashlib
import math
import os
import signal as _signal
import time
from dataclasses import dataclass, field

from repro.core.errors import (
    ParallelConfigError,
    ParallelError,
    SupervisionExhaustedError,
)
from repro.obs.events import RoundReplay, WorkerCrash, WorkerRespawn
from repro.resilience.retry import RetryPolicy

#: Supervision counters of the most recently finished supervised run,
#: published for the resilience bench (``python -m repro.bench
#: resilience --executor process`` reads recovery latency from here).
#: Keys mirror :class:`SupervisionState` fields.
LAST_SUPERVISION: dict = {}

#: Host-scale retry schedule for worker respawns (the simulated-network
#: default of :class:`RetryPolicy` backs off in microseconds; process
#: forks live on the millisecond scale).
_HOST_RETRY = RetryPolicy(
    timeout=0.05, backoff_factor=2.0, max_backoff=1.0, max_retries=16
)


@dataclass
class ProcessChaos:
    """Deterministic real-process fault injection for the worker pool.

    Unlike :class:`repro.resilience.faults.FaultPlan` (which perturbs
    the *simulated* machine), this injector sends actual signals to
    live worker processes at phase-round boundaries, exercising the
    supervisor's detection and replay machinery end to end.

    * ``every`` — fire on every k-th eligible dispatch (1-based, so
      ``every=3`` fires on dispatches 2, 5, 8, ... of the window);
      ``rounds`` — explicit 0-based dispatch indices instead.
    * ``worker`` — fixed victim id, or None for a seeded per-firing
      choice (a pure function of ``(seed, dispatch index)``, so sweeps
      are reproducible).
    * ``signal`` — ``"kill"`` (SIGKILL: crash) or ``"stop"`` (SIGSTOP:
      manifests as a hang past the round deadline; the supervisor then
      hard-kills and recovers it identically).
    * ``window`` — ``"round"`` targets phase-round dispatches,
      ``"commit"`` targets zero-merge commit dispatches.

    The dispatch counter and the fired set are *never* reset: a firing
    is consumed, so pool restarts after degradation (or resilience
    incarnations) cannot re-fire the same kill forever — the same
    consume-once rule :class:`~repro.resilience.faults.FaultInjector`
    uses to bound its incarnation loop.
    """

    seed: int = 0
    every: int | None = None
    rounds: tuple[int, ...] = ()
    worker: int | None = None
    signal: str = "kill"
    window: str = "round"

    def __post_init__(self) -> None:
        if self.every is not None and self.every < 1:
            raise ParallelConfigError(
                f"chaos every must be >= 1, got {self.every}", code="PPM601"
            )
        if self.signal not in ("kill", "stop"):
            raise ParallelConfigError(
                f"chaos signal must be 'kill' or 'stop', got {self.signal!r}",
                code="PPM601",
            )
        if self.window not in ("round", "commit"):
            raise ParallelConfigError(
                f"chaos window must be 'round' or 'commit', got {self.window!r}",
                code="PPM601",
            )
        if self.every is None and not self.rounds:
            raise ParallelConfigError(
                "chaos needs a trigger: set every=K or rounds=(i, ...)",
                code="PPM601",
            )
        self.rounds = tuple(self.rounds)
        self._dispatch = 0
        self._fired: set[int] = set()

    def should_fire(self, tag: str, n_workers: int) -> int | None:
        """Victim worker id for this dispatch, or None.  Counts every
        dispatch of the configured window; a returned firing is
        consumed."""
        if tag != self.window:
            return None
        i = self._dispatch
        self._dispatch += 1
        if self.rounds:
            fire = i in self.rounds
        else:
            fire = (i + 1) % self.every == 0
        if not fire or i in self._fired:
            return None
        self._fired.add(i)
        if self.worker is not None:
            return self.worker % n_workers
        digest = hashlib.blake2b(
            f"{self.seed}:{i}".encode(), digest_size=8
        ).digest()
        return int.from_bytes(digest, "big") % n_workers


@dataclass(frozen=True)
class SupervisionPolicy:
    """Knobs of the worker supervisor (``run_ppm(...,
    supervision=SupervisionPolicy())``).

    ``deadline_base + deadline_per_vp * shard_vps`` host seconds bound
    each worker's reply per round; the defaults are generous (a round
    normally completes in milliseconds) so hang detection never
    misfires on a loaded host.  ``max_respawns`` bounds recovery
    attempts per pool incarnation before :attr:`degrade` applies.
    """

    max_respawns: int = 8
    deadline_base: float = 60.0
    deadline_per_vp: float = 0.05
    degrade: str = "shrink"
    retry: RetryPolicy = field(default_factory=lambda: _HOST_RETRY)
    chaos: ProcessChaos | None = None

    def __post_init__(self) -> None:
        if self.max_respawns < 0:
            raise ParallelConfigError(
                f"max_respawns must be >= 0, got {self.max_respawns}",
                code="PPM601",
            )
        for name in ("deadline_base", "deadline_per_vp"):
            v = getattr(self, name)
            if not math.isfinite(v) or v <= 0 and name == "deadline_base" or v < 0:
                raise ParallelConfigError(
                    f"{name} must be positive and finite, got {v}",
                    code="PPM601",
                )
        if self.degrade not in ("shrink", "inline", "error"):
            raise ParallelConfigError(
                "degrade must be 'shrink', 'inline' or 'error', got "
                f"{self.degrade!r}",
                code="PPM601",
            )

    def round_deadline(self, shard_vps: int) -> float:
        """Reply deadline (host seconds) for a shard of ``shard_vps``."""
        return self.deadline_base + self.deadline_per_vp * shard_vps


@dataclass
class SupervisionState:
    """Mutable counters of one supervised run, surviving pool restarts
    (degradation) so the final report covers the whole run."""

    crashes: int = 0
    hangs: int = 0
    corrupt: int = 0
    respawns: int = 0
    replayed_rounds: int = 0
    degradations: int = 0
    recovery_host_s: float = 0.0

    def publish(self) -> None:
        LAST_SUPERVISION.clear()
        LAST_SUPERVISION.update(
            crashes=self.crashes,
            hangs=self.hangs,
            corrupt=self.corrupt,
            respawns=self.respawns,
            replayed_rounds=self.replayed_rounds,
            degradations=self.degradations,
            recovery_host_s=self.recovery_host_s,
        )


class _PoolDegradation(ParallelError):
    """Internal control-flow signal: the respawn budget is exhausted
    and the run must restart in a degraded configuration.  Caught by
    ``run_ppm``'s supervised restart loop; never user-visible."""

    def __init__(self, mode: str, workers_from: int) -> None:
        super().__init__(
            f"worker pool degrading ({mode}) from {workers_from} workers"
        )
        self.mode = mode
        self.workers_from = workers_from


class WorkerSupervisor:
    """Parent-side recovery engine of one :class:`ProcessBackend`.

    The backend logs every dispatched round/commit command here (by
    reference — the backend never mutates a command after dispatch);
    when the pool reports failures mid-roundtrip, :meth:`recover`
    respawns each failed worker and replays its shard's history:

    ========= ==========================================================
    failure   replayed command sequence on the fresh worker
    ========= ==========================================================
    do_start  the original per-worker payload, resent verbatim
    prologue  do_start (current segments) -> prologue
    round     do_start -> prologue -> all prior rounds (replay mode,
              no reports) -> the failed round, re-dispatched for real
    commit    do_start (*retained* pre-swap segments) -> prologue ->
              prior rounds -> the held round (replay, hold mode) ->
              the commit command verbatim + ``restore`` (the worker
              first resets its shard's footprint rows from the
              pristine pre-swap copy, making re-application safe even
              after a partial in-place commit)
    ========= ==========================================================

    Logged commits of *earlier* rounds are skipped entirely (their
    effects live in the current segments) and replayed rounds carry no
    remaps (the fresh ``do_start`` already names current segments).
    """

    def __init__(self, backend, policy: SupervisionPolicy,
                 state: SupervisionState) -> None:
        self.backend = backend
        self.policy = policy
        self.state = state
        self.pool = None  # set by ProcessBackend after pool creation
        self._respawns_used = 0
        # Per-do replay inputs.
        self._common: dict | None = None
        self._payloads: list | None = None
        self._log: list[tuple[str, dict]] = []
        self._max_shard = 0

    # -- do lifecycle (called by the backend) --------------------------
    def begin_do(self, common: dict, payloads: list) -> None:
        self._common = common
        self._payloads = payloads
        self._log = []
        self._max_shard = max(
            (hi - lo) for lo, hi in (p["shard"] for p in payloads)
        )

    def log_round(self, cmd: dict) -> None:
        self._log.append(("round", cmd))

    def log_commit(self, cmd: dict) -> None:
        self._log.append(("commit", cmd))

    def end_do(self) -> None:
        self._common = None
        self._payloads = None
        self._log = []
        self.state.publish()

    # -- detection hooks (called by the pool) --------------------------
    def deadline_for(self, tag: str) -> float:
        return self.policy.round_deadline(self._max_shard)

    def maybe_chaos(self, tag: str, sent: list[int]) -> None:
        """Fire the configured chaos injection for this dispatch (a
        no-op without a chaos plan)."""
        chaos = self.policy.chaos
        if chaos is None or self.pool is None:
            return
        victim = chaos.should_fire(tag, self.pool.n_workers)
        if victim is None or victim not in sent:
            return
        sig = _signal.SIGKILL if chaos.signal == "kill" else _signal.SIGSTOP
        proc = self.pool._procs[victim]
        try:
            os.kill(proc.pid, sig)
        except (ProcessLookupError, OSError):  # pragma: no cover - raced exit
            pass

    # -- recovery ------------------------------------------------------
    def recover(self, tag: str, payload, per_worker, failures):
        """Recover every ``(worker, kind)`` failure of one roundtrip;
        returns ``{worker: result body}`` for the pool to splice into
        its reply list."""
        results = {}
        for w, kind in failures:
            results[w] = self._recover_one(w, kind, tag, payload, per_worker)
        return results

    def _recover_one(self, w: int, kind: str, tag: str, payload, per_worker):
        state = self.state
        if kind == "hang":
            state.hangs += 1
        elif kind == "corrupt-reply":
            state.corrupt += 1
        else:
            state.crashes += 1
        self._emit(
            WorkerCrash(phase=self._phase(), worker=w, failure=kind, command=tag)
        )
        pool = self.pool
        pool._reap(w)
        t0 = time.perf_counter()
        attempt = 0
        while True:
            attempt += 1
            if self._respawns_used >= self.policy.max_respawns:
                self._degrade(w, kind)
            self._respawns_used += 1
            time.sleep(self.policy.retry.backoff(attempt))
            try:
                pool._respawn(w)
                self.backend.reset_worker_decode(w)
                state.respawns += 1
                self._emit(
                    WorkerRespawn(
                        phase=self._phase(),
                        worker=w,
                        attempt=attempt,
                        host_s=time.perf_counter() - t0,
                    )
                )
                result = self._replay(w, tag, payload, per_worker)
            except (EOFError, TimeoutError, OSError):
                # The replacement died (or hung) mid-replay; reap it
                # and go around — the budget check bounds the loop.
                pool._reap(w)
                continue
            state.recovery_host_s += time.perf_counter() - t0
            return result

    def _replay(self, w: int, tag: str, payload, per_worker):
        pool = self.pool
        backend = self.backend
        deadline = self.deadline_for(tag)
        if tag == "do_start":
            pool.send_one(w, "do_start", per_worker[w])
            return pool.recv_one(w, deadline)
        # Rebuild do_start: current segment names, except inside a
        # commit window, where swapped targets re-attach their retained
        # pre-swap segments (the commit command's own remaps then move
        # the worker onto the new ones, exactly as the original worker
        # experienced it).
        overrides = (
            backend.rt.shm.retained_names() if tag == "commit" else None
        )
        common = dict(self._common, shared=backend._shared_specs(overrides))
        pool.send_one(
            w, "do_start",
            {"common": common, "shard": self._payloads[w]["shard"]},
        )
        pool.recv_one(w, deadline)
        pool.send_one(w, "prologue", None)
        prologue_reply = pool.recv_one(w, deadline)
        if tag == "prologue":
            return prologue_reply
        rounds = [cmd for k, cmd in self._log if k == "round"]
        # The failing dispatch is always the last logged entry: exclude
        # it (tag == "round": it is re-dispatched for real below;
        # tag == "commit": its round replays in hold mode below).
        replay_rounds = rounds[:-1]
        replayed = 0
        t0 = time.perf_counter()
        for cmd in replay_rounds:
            pool.send_one(
                w, "round",
                {**cmd, "remaps": [], "mode": "ship", "replay": True},
            )
            rep = pool.recv_one(w, deadline)
            backend.merge_views(rep.get("views", ()))
            replayed += 1
        if tag == "round":
            pool.send_one(w, "round", dict(payload, remaps=[]))
            result = pool.recv_one(w, deadline)
        else:  # commit: replay the held round, then the commit verbatim
            held_cmd = rounds[-1]
            pool.send_one(
                w, "round", {**held_cmd, "remaps": [], "replay": True}
            )
            rep = pool.recv_one(w, deadline)
            backend.merge_views(rep.get("views", ()))
            replayed += 1
            pool.send_one(w, "commit", dict(payload, restore=True))
            result = pool.recv_one(w, deadline)
        self.state.replayed_rounds += replayed
        self._emit(
            RoundReplay(
                phase=self._phase(),
                worker=w,
                rounds=replayed,
                host_s=time.perf_counter() - t0,
            )
        )
        return result

    def _degrade(self, w: int, kind: str):
        pol = self.policy
        if pol.degrade == "error":
            raise SupervisionExhaustedError(
                f"respawn budget ({pol.max_respawns}) exhausted recovering "
                f"worker {w} ({kind}) and degrade='error'; raise "
                "max_respawns or pick degrade='shrink'/'inline' to keep "
                "the run alive"
            )
        raise _PoolDegradation(pol.degrade, self.pool.n_workers)

    # -- helpers -------------------------------------------------------
    def _phase(self) -> int:
        rt = self.backend.rt
        return rt.stats_global_phases + rt.stats_node_phases

    def _emit(self, ev) -> None:
        tr = self.backend.rt.tracer
        if tr is not None:
            tr.emit(ev)
