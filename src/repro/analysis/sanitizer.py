"""Dynamic phase-conflict sanitizer.

The model's R3 rule (docs/SEMANTICS.md) resolves overlapping plain
writes deterministically by global-VP-rank order — deterministic, but
*layout-sensitive*: renumber the VPs and the committed array changes.
That is precisely the latent bug class a PPM programmer cannot see,
because the program has no barriers or locks to inspect.  With the
sanitizer enabled (``run_ppm(..., sanitize="warn"|"strict")``), every
buffered write additionally records a
:class:`~repro.core.shared.WriteEvent`, and at each phase commit —
*before* any write applies — the footprints are checked for cross-VP
overlaps and classified:

* **PPM201, rank-order-dependent** (error): distinct VPs wrote
  *different* values to one element, or overlapping accumulates used
  different operators; permuting VP commit order would change the
  committed array.
* **PPM202, mixed write + accumulate** (error): one element receives
  both a plain write and an accumulate from distinct VPs in one phase
  — the R3/R4 interaction hazard.
* **PPM203, benign same-value overlap** (warning): distinct VPs
  plain-wrote identical values to one element; the commit is
  order-independent, but the redundancy usually signals a chunking
  bug.

Overlapping ``accumulate`` calls with one common commutative operator
are the model's blessed combining pattern (R4) and produce no
diagnostic.  Classification never touches the committed store: events
replay onto scratch copies of the phase-start snapshot.

Reference (triggering examples and fixes): docs/DIAGNOSTICS.md#ppm201,
#ppm202 and #ppm203.
"""

from __future__ import annotations

from collections import defaultdict
from typing import TYPE_CHECKING

import numpy as np

from repro.analysis.diagnostics import Diagnostic
from repro.core.errors import PhaseConflictError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.phase import PhaseRecorder
    from repro.core.shared import WriteEvent

#: Cap on rows / ranks carried by one diagnostic (the message reports
#: the true totals).
_SAMPLE = 8


def _elementwise_equal(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Equality mask treating NaN == NaN (conflict-wise identical)."""
    eq = a == b
    if np.issubdtype(a.dtype, np.floating) or np.issubdtype(a.dtype, np.complexfloating):
        eq |= np.isnan(a) & np.isnan(b)
    return eq


class PhaseSanitizer:
    """Per-runtime conflict detector; one instance per ``PpmRuntime``.

    ``mode`` is ``"warn"`` (collect diagnostics) or ``"strict"``
    (additionally raise :class:`PhaseConflictError` on error-severity
    findings, aborting the phase before its commit).
    """

    def __init__(self, mode: str = "warn") -> None:
        if mode not in ("warn", "strict"):
            raise ValueError(f"sanitize mode must be 'warn' or 'strict', got {mode!r}")
        self.mode = mode
        self.diagnostics: list[Diagnostic] = []
        #: Phases checked / phases with at least one finding.
        self.phases_checked = 0
        self.phases_flagged = 0

    # ------------------------------------------------------------------
    def check_phase(self, recorder: "PhaseRecorder", *, phase_index: int) -> None:
        """Classify this phase's write footprints; called by the
        runtime at commit time, before any buffered write applies."""
        self.phases_checked += 1
        events = recorder.write_events
        if not events:
            return
        groups: dict[tuple[int, int | None], list["WriteEvent"]] = defaultdict(list)
        for ev in events:
            groups[(id(ev.shared), ev.instance)].append(ev)
        found: list[Diagnostic] = []
        for evs in groups.values():
            found.extend(self._check_group(evs, phase_index, recorder.kind))
        if not found:
            return
        self.phases_flagged += 1
        self.diagnostics.extend(found)
        if self.mode == "strict" and any(d.severity == "error" for d in found):
            head = next(d for d in found if d.severity == "error")
            raise PhaseConflictError(
                f"phase conflict detected before commit: {head.format()}",
                found,
            )

    # ------------------------------------------------------------------
    def _check_group(
        self, evs: list["WriteEvent"], phase_index: int, phase_kind: str
    ) -> list[Diagnostic]:
        """Classify one (shared variable, instance) group of events."""
        by_rank: dict[int, list["WriteEvent"]] = defaultdict(list)
        for ev in evs:
            by_rank[ev.rank].append(ev)
        if len(by_rank) < 2:
            return []  # single writer: R3 program order, deterministic

        # Cheap row-level filter: distinct writers with disjoint axis-0
        # footprints cannot conflict.
        rank_rows = [
            np.unique(np.concatenate([e.rows.materialize() for e in revs]))
            for revs in by_rank.values()
        ]
        all_rows = np.concatenate(rank_rows)
        if np.unique(all_rows).size == all_rows.size:
            return []

        shared = evs[0].shared
        instance = evs[0].instance
        data = shared._data if instance is None else shared._data[instance]
        shape = data.shape
        varname = shared.name if instance is None else f"{shared.name}@node{instance}"

        # Element-exact per-rank footprints, split by operation kind.
        wmask: dict[int, np.ndarray] = {}
        amask: dict[int, np.ndarray] = {}
        aop_masks: dict[str, np.ndarray] = {}
        for rank, revs in by_rank.items():
            for ev in revs:
                fp = ev.footprint(shape)
                if ev.kind == "write":
                    dst = wmask.setdefault(rank, np.zeros(shape, dtype=bool))
                else:
                    dst = amask.setdefault(rank, np.zeros(shape, dtype=bool))
                    om = aop_masks.setdefault(ev.op, np.zeros(shape, dtype=bool))
                    om |= fp
                dst |= fp

        n_w = np.zeros(shape, dtype=np.int32)
        n_a = np.zeros(shape, dtype=np.int32)
        n_touch = np.zeros(shape, dtype=np.int32)
        for rank in by_rank:
            w = wmask.get(rank)
            a = amask.get(rank)
            if w is not None:
                n_w += w
            if a is not None:
                n_a += a
            touch = (
                w | a if w is not None and a is not None else (w if w is not None else a)
            )
            n_touch += touch

        mixed = (n_w >= 1) & (n_a >= 1) & (n_touch >= 2)
        ww = (n_w >= 2) & ~mixed
        multi_op = np.zeros(shape, dtype=np.int32)
        for om in aop_masks.values():
            multi_op += om
        aa_mixed_ops = (n_a >= 2) & (multi_op >= 2) & ~mixed

        out: list[Diagnostic] = []
        if mixed.any():
            out.append(
                self._diag(
                    "PPM202",
                    "error",
                    "element(s) received both a plain write and an accumulate "
                    "from distinct VPs in one phase; the committed value "
                    "depends on VP rank order (R3/R4 hazard)",
                    mixed, wmask, amask, varname, phase_index, phase_kind,
                )
            )

        if ww.any():
            order_dep, benign = self._split_ww(ww, by_rank, wmask, data)
            if order_dep.any():
                out.append(
                    self._diag(
                        "PPM201",
                        "error",
                        "distinct VPs plain-wrote different values to the same "
                        "element(s); the committed value depends on VP rank "
                        "order and would change under a different node layout",
                        order_dep, wmask, amask, varname, phase_index, phase_kind,
                    )
                )
            if benign.any():
                out.append(
                    self._diag(
                        "PPM203",
                        "warning",
                        "distinct VPs plain-wrote identical values to the same "
                        "element(s); the commit is order-independent but the "
                        "redundant writes usually signal an overlap bug",
                        benign, wmask, amask, varname, phase_index, phase_kind,
                    )
                )

        if aa_mixed_ops.any():
            ops = sorted(aop_masks)
            out.append(
                self._diag(
                    "PPM201",
                    "error",
                    f"overlapping accumulates with different operators "
                    f"({', '.join(ops)}) on the same element(s); operator "
                    "application order follows VP rank, so the result is "
                    "rank-order-dependent",
                    aa_mixed_ops, wmask, amask, varname, phase_index, phase_kind,
                )
            )
        return out

    # ------------------------------------------------------------------
    @staticmethod
    def _split_ww(
        ww: np.ndarray,
        by_rank: dict[int, list["WriteEvent"]],
        wmask: dict[int, np.ndarray],
        data: np.ndarray,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Split write-write overlap elements into rank-order-dependent
        (writers disagree on the value) and benign (all writers wrote
        the same value).

        Each writing rank's events replay in program order onto a
        scratch copy of the phase-start snapshot, giving that rank's
        final value per element — exact, unlike testing a single
        alternative commit permutation, which can miss three-writer
        disagreements that happen to agree at both extremes.
        """
        ref = np.empty_like(data)
        seen = np.zeros(data.shape, dtype=bool)
        same = np.ones(data.shape, dtype=bool)
        for rank in sorted(wmask):
            scratch = data.copy()
            for ev in sorted(by_rank[rank], key=lambda e: e.seq):
                ev.replay(scratch)
            m = wmask[rank]
            new = m & ~seen
            ref[new] = scratch[new]
            overlap = m & seen
            if overlap.any():
                same &= ~overlap | _elementwise_equal(scratch, ref)
            seen |= m
        return ww & ~same, ww & same

    # ------------------------------------------------------------------
    @staticmethod
    def _diag(
        rule: str,
        severity: str,
        message: str,
        mask: np.ndarray,
        wmask: dict[int, np.ndarray],
        amask: dict[int, np.ndarray],
        varname: str,
        phase_index: int,
        phase_kind: str,
    ) -> Diagnostic:
        rows = np.unique(np.nonzero(mask)[0])
        ranks = sorted(
            rank
            for rank in set(wmask) | set(amask)
            if (rank in wmask and (wmask[rank] & mask).any())
            or (rank in amask and (amask[rank] & mask).any())
        )
        n_elem = int(mask.sum())
        detail = f" [{n_elem} element(s), {rows.size} row(s), {len(ranks)} VP(s)]"
        return Diagnostic(
            tool="sanitizer",
            rule=rule,
            severity=severity,
            message=message + detail,
            phase_index=phase_index,
            phase_kind=phase_kind,
            variable=varname,
            rows=tuple(int(r) for r in rows[:_SAMPLE]),
            ranks=tuple(int(r) for r in ranks[:_SAMPLE]),
        )
