"""Symbolic access summaries: the affine domain of the dataflow verifier.

The static verifier (:mod:`repro.analysis.dataflow`) abstracts every
index expression of a PPM kernel into a small symbolic language and
every shared-variable access into an *index set* over that language.
This module is the domain itself: symbolic values, their normalisation,
a lightweight inequality prover, and the cross-VP relation test that
decides whether two accesses from distinct virtual processors can
touch a common array row.

Symbolic values are canonical nested tuples (hashable, comparable):

``("top",)``
    unknown, possibly rank-dependent (the top element of the domain);
``("const", c)``
    the integer ``c``;
``("sym", key)`` / ``("nodesym", key)``
    an opaque value that is identical for every VP in the phase /
    for every VP on one node (e.g. problem sizes vs ``ctx.node_id``);
``("rank", kind)``
    ``ctx.node_rank`` (``kind="node"``) or ``ctx.global_rank``;
``("nodelo", pk)`` / ``("nodehi", pk)``
    the bounds of a shared array's node block,
    ``X.local_range(ctx.node_id)``, keyed by the array ``pk``;
``("extent", pk)``
    the axis-0 extent of the shared array keyed by ``pk`` (the bounds
    verifier's upper fence; node blocks always lie inside it);
``("splitlo", sk)`` / ``("splithi", sk)``
    the bounds of ``split_range(span, count)[rank]``, keyed by
    ``sk = (span, count, rank_kind)``;
``("add", ((atom, coeff), ...), c)``
    a normalised linear combination plus integer constant;
``("max", atoms)`` / ``("min", atoms)``
    pointwise max/min of the argument values.

Index sets (always axis-0 rows, the granularity of the dynamic
sanitizer) are:

``("topset",)``  unknown rows; ``("whole",)``  every row;
``("pt", v)``    the single row ``v``;
``("iv", lo, hi)``     exactly the rows ``[lo, hi)``;
``("ivsub", lo, hi)``  an unknown subset of ``[lo, hi)``.

The prover (:func:`le`) is deliberately small: structural equality
after normalisation, constant folding, max/min decomposition, and
difference cancellation against the axioms of the domain
(``0 <= splitlo <= splithi <= span``, ``0 <= nodelo <= nodehi``).
Everything it cannot prove is reported "unknown", never "disjoint" —
soundness over completeness.
"""

from __future__ import annotations

from dataclasses import dataclass, field

# ======================================================================
# Symbolic values
# ======================================================================
TOP = ("top",)

#: Uniformity classes: 0 = identical on every VP of the phase,
#: 1 = identical on every VP of one node, 2 = may differ per VP.
U_GLOBAL, U_NODE, U_RANK = 0, 1, 2


def s_const(c) -> tuple:
    return ("const", int(c))


def s_sym(key) -> tuple:
    return ("sym", key)


def s_nodesym(key) -> tuple:
    return ("nodesym", key)


def s_rank(kind: str) -> tuple:
    assert kind in ("node", "global")
    return ("rank", kind)


def s_extent(pk) -> tuple:
    return ("extent", pk)


def is_const(v, c=None) -> bool:
    return v[0] == "const" and (c is None or v[1] == c)


def _linearize(v) -> tuple[dict, int] | None:
    """``v`` as ``{atom: coeff} + const``; None when TOP is involved."""
    if v == TOP:
        return None
    if v[0] == "const":
        return {}, v[1]
    if v[0] == "add":
        return dict(v[1]), v[2]
    if v[0] == "neg":
        lin = _linearize(v[1])
        if lin is None:
            return None
        terms, c = lin
        return {a: -k for a, k in terms.items()}, -c
    if v[0] == "mul":
        c0, x = v[1], v[2]
        lin = _linearize(x)
        if lin is None:
            return None
        terms, c = lin
        return {a: c0 * k for a, k in terms.items()}, c0 * c
    return {v: 1}, 0


def _from_linear(terms: dict, c: int) -> tuple:
    terms = {a: k for a, k in terms.items() if k != 0}
    if not terms:
        return s_const(c)
    if len(terms) == 1 and c == 0:
        (atom, k), = terms.items()
        if k == 1:
            return atom
        if k == -1:
            return ("neg", atom)
        return ("mul", k, atom)
    packed = tuple(sorted(terms.items(), key=repr))
    return ("add", packed, c)


def s_add(*vs) -> tuple:
    terms: dict = {}
    c = 0
    for v in vs:
        lin = _linearize(v)
        if lin is None:
            return TOP
        t, k = lin
        for a, n in t.items():
            terms[a] = terms.get(a, 0) + n
        c += k
    return _from_linear(terms, c)


def s_neg(v) -> tuple:
    if v == TOP:
        return TOP
    lin = _linearize(v)
    if lin is None:
        return TOP
    terms, c = lin
    return _from_linear({a: -k for a, k in terms.items()}, -c)


def s_sub(a, b) -> tuple:
    return s_add(a, s_neg(b))


def s_mul(a, b) -> tuple:
    if is_const(a) and is_const(b):
        return s_const(a[1] * b[1])
    for c, x in ((a, b), (b, a)):
        if is_const(c):
            if c[1] == 0:
                return s_const(0)
            if c[1] == 1:
                return x
            lin = _linearize(x)
            if lin is None:
                return TOP
            terms, k = lin
            return _from_linear(
                {at: c[1] * n for at, n in terms.items()}, c[1] * k
            )
    return TOP


def _s_extreme(tag: str, vs) -> tuple:
    flat: list = []
    for v in vs:
        if v == TOP:
            return TOP
        if v[0] == tag:
            flat.extend(v[1])
        else:
            flat.append(v)
    consts = [v[1] for v in flat if is_const(v)]
    rest = sorted({v for v in flat if not is_const(v)}, key=repr)
    if consts:
        c = (max if tag == "max" else min)(consts)
        rest.append(s_const(c))
        rest.sort(key=repr)
    if len(rest) == 1:
        return rest[0]
    return (tag, tuple(rest))


def s_max(*vs) -> tuple:
    return _s_extreme("max", vs)


def s_min(*vs) -> tuple:
    return _s_extreme("min", vs)


# ======================================================================
# Structure helpers: uniformity class, substitution
# ======================================================================
def vclass(v) -> int:
    """Uniformity class of a symbolic value (worst leaf wins)."""
    if not isinstance(v, tuple):
        return U_GLOBAL
    tag = v[0] if v and isinstance(v[0], str) else None
    if tag in ("top", "rank", "splitlo", "splithi"):
        return U_RANK
    if tag in ("nodelo", "nodehi", "nodesym"):
        return U_NODE
    if tag == "sym":
        # Opaque-but-uniform by construction; its key is identity
        # material, not a value to classify.
        return U_GLOBAL
    return max((vclass(x) for x in v), default=U_GLOBAL)


def _walk_tuples(v):
    yield v
    if isinstance(v, tuple):
        for x in v:
            yield from _walk_tuples(x)


def uniform_for(v, scope: str) -> bool:
    """Is ``v`` provably identical across the VPs the phase relates?

    ``scope="global"`` relates all VPs cluster-wide; ``scope="node"``
    relates only VPs of one node (node-block bounds then count as
    uniform)."""
    c = vclass(v)
    return c == U_GLOBAL if scope == "global" else c <= U_NODE


def subst(v, mapping: dict):
    """Substitute whole symbolic sub-trees (e.g. a loop variable's
    placeholder sym) throughout ``v``, including inside sym keys."""
    if not isinstance(v, tuple):
        return v
    if v in mapping:
        return mapping[v]
    out = tuple(subst(x, mapping) for x in v)
    if out and isinstance(out[0], str) and out[0] in (
        "add", "max", "min", "neg", "mul", "const"
    ):
        # Re-normalise: substitution may enable folding/cancellation.
        if out[0] == "add":
            return s_add(
                *(s_mul(s_const(k), a) for a, k in out[1]), s_const(out[2])
            )
        if out[0] == "max":
            return s_max(*out[1])
        if out[0] == "min":
            return s_min(*out[1])
        if out[0] == "neg":
            return s_neg(out[1])
        if out[0] == "mul":
            return s_mul(s_const(out[1]), out[2])
    return out


# ======================================================================
# The prover
# ======================================================================
def _atom_nonneg(atom, coeff: int) -> bool:
    if coeff < 0:
        return False
    tag = atom[0]
    if tag in ("splitlo", "splithi", "nodelo", "nodehi", "extent", "rank"):
        return True
    if tag == "const":
        return atom[1] >= 0
    if tag == "max":
        return any(_atom_nonneg(a, 1) for a in atom[1])
    if tag == "min":
        return all(_atom_nonneg(a, 1) for a in atom[1])
    return False


def _atom_ge(p, n, depth: int) -> bool:
    """``p >= n`` for single atoms, from the domain's axioms."""
    if p == n:
        return True
    if n[0] == "splitlo" and p[0] == "splithi" and p[1] == n[1]:
        return True
    if n[0] == "nodelo" and p[0] == "nodehi" and p[1] == n[1]:
        return True
    # Node blocks lie inside the array: extent >= nodehi >= nodelo.
    if n[0] in ("nodelo", "nodehi") and p == ("extent", n[1]):
        return True
    # split_range(span, count) bounds never exceed span.
    if n[0] in ("splitlo", "splithi") and p == n[1][0]:
        return True
    if p[0] == "max" and any(_atom_ge(a, n, depth + 1) for a in p[1]):
        return True
    if n[0] == "min" and any(_atom_ge(p, a, depth + 1) for a in n[1]):
        return True
    return False


def le(a, b, depth: int = 0) -> bool:
    """Prove ``a <= b``.  False means "could not prove", not ``a > b``."""
    if depth > 8 or a == TOP or b == TOP:
        return False
    if a == b:
        return True
    if is_const(a) and is_const(b):
        return a[1] <= b[1]
    if b[0] == "max" and any(le(a, t, depth + 1) for t in b[1]):
        return True
    if a[0] == "min" and any(le(t, b, depth + 1) for t in a[1]):
        return True
    if a[0] == "max" and all(le(t, b, depth + 1) for t in a[1]):
        return True
    if b[0] == "min" and all(le(a, t, depth + 1) for t in b[1]):
        return True
    return _prove_nonneg(s_sub(b, a), depth)


def _prove_nonneg(diff, depth: int) -> bool:
    """Prove ``diff >= 0`` by greedy axiom discharge, falling back to
    sound relaxations (split bounds -> spans, max/min case splits)."""
    if depth > 8 or diff == TOP:
        return False
    lin = _linearize(diff)
    if lin is None:
        return False
    terms, c = lin
    pos = [(at, k) for at, k in terms.items() if k > 0]
    neg = [(at, -k) for at, k in terms.items() if k < 0]
    if c >= 0:
        # Greedily discharge each negative atom against a positive one
        # that dominates it (axiom pairs), multiplicity-respecting.
        rem = list(pos)
        ok = True
        for at, k in neg:
            matched = False
            for i, (p, pk) in enumerate(rem):
                if pk >= k and _atom_ge(p, at, depth):
                    rem[i] = (p, pk - k)
                    matched = True
                    break
            if not matched:
                ok = False
                break
        if ok and all(_atom_nonneg(p, k) for p, k in rem if k > 0):
            return True
    # Relaxation 1: split_range bounds never exceed their span, so a
    # *negatively*-weighted splitlo/splithi atom may be replaced by the
    # span symbol (``-k*split >= -k*span``), which often cancels the
    # nodelo/nodehi pair the span was built from.
    relaxed = {
        at: at[1][0]
        for at, k in terms.items()
        if k < 0 and at[0] in ("splitlo", "splithi")
    }
    if relaxed:
        diff2 = subst(diff, relaxed)
        if diff2 != diff and _prove_nonneg(diff2, depth + 1):
            return True
    # Relaxation 2: a max/min atom always equals one of its members, so
    # proving the inequality under *every* member substitution proves
    # it outright (and a positively-weighted max, or negatively-weighted
    # min, needs only one member as a lower bound).
    for at, k in terms.items():
        if at[0] not in ("max", "min"):
            continue
        one_sided = (k > 0) == (at[0] == "max")
        results = [
            _prove_nonneg(subst(diff, {at: member}), depth + 1)
            for member in at[1]
        ]
        if (any(results) if one_sided else all(results)):
            return True
        break  # case-split on the first extreme atom only
    return False


def ge(a, b) -> bool:
    return le(b, a)


# ======================================================================
# Index sets
# ======================================================================
SET_TOP = ("topset",)
SET_WHOLE = ("whole",)


def iset_pt(v) -> tuple:
    return SET_TOP if v == TOP else ("pt", v)


def iset_iv(lo, hi, exact: bool = True) -> tuple:
    if lo == TOP or hi == TOP:
        return SET_TOP
    return ("iv" if exact else "ivsub", lo, hi)


def iset_bounds(s) -> tuple | None:
    """``(lo, hi)`` with the set contained in ``[lo, hi)``, or None."""
    if s[0] in ("iv", "ivsub"):
        return s[1], s[2]
    if s[0] == "pt":
        return s[1], s_add(s[1], s_const(1))
    return None


def iset_nonempty(s) -> bool:
    """Definitely non-empty (needed to *prove* an overlap)."""
    if s[0] == "pt":
        return True
    if s[0] == "whole":
        return True  # zero-length shared arrays do not occur
    if s[0] == "iv":
        return is_const(s[1]) and is_const(s[2]) and s[1][1] < s[2][1]
    return False


def iset_class(s, scope: str) -> int:
    if s[0] in ("topset",):
        return U_RANK
    if s[0] == "whole":
        return U_GLOBAL
    parts = s[1:]
    return max(vclass(p) for p in parts)


# ----------------------------------------------------------------------
# Chunk families: B + split_range(span, count)[rank]
# ----------------------------------------------------------------------
def _find_family(lo):
    """``lo == B + splitlo(sk)`` -> ``(B, sk)``; else None."""
    lin = _linearize(lo)
    if lin is None:
        return None
    terms, c = lin
    splits = [a for a, k in terms.items() if a[0] == "splitlo" and k == 1]
    if len(splits) != 1:
        return None
    sk = splits[0][1]
    rest = {a: k for a, k in terms.items() if a != splits[0]}
    return _from_linear(rest, c), sk


def chunk_family(s, scope: str):
    """The validated chunk family ``(B, sk)`` containing index set
    ``s``, or None.  Two accesses in the same family are disjoint
    across distinct VPs of the scope."""
    bounds = iset_bounds(s)
    if bounds is None:
        return None
    lo, hi = bounds
    cands = [lo]
    if lo[0] == "max":
        cands.extend(lo[1])
    for lc in cands:
        fam = _find_family(lc)
        if fam is None:
            continue
        base, sk = fam
        chunk_hi = s_add(base, ("splithi", sk))
        if le(hi, chunk_hi) and ge(lo, lc) and _family_valid(base, sk, scope):
            return (base, sk)
    return None


def _span_nonempty(span):
    """The span with the ``max(0, x)`` emptiness clamp peeled off —
    valid under the assumption the chunk is non-empty."""
    if span[0] == "max":
        args = [a for a in span[1] if not (is_const(a) and a[1] <= 0)]
        if len(args) == 1:
            return args[0]
    return span


def _family_valid(base, sk, scope: str) -> bool:
    span, _count, rank_kind = sk
    if rank_kind == "global":
        # Distinct VPs have distinct global ranks everywhere.
        return uniform_for(base, scope)
    if rank_kind != "node":
        return False
    if scope == "node":
        return uniform_for(base, "node")
    # Global scope, node-rank split: every (non-empty) chunk must lie
    # inside its node's block of some array, and node blocks partition
    # the index space — so chunks of distinct VPs stay disjoint.
    ub = s_add(base, _span_nonempty(span))
    for atom in _walk_tuples(base):
        if isinstance(atom, tuple) and atom and atom[0] == "nodelo":
            pk = atom[1]
            if ge(base, ("nodelo", pk)) and le(ub, ("nodehi", pk)):
                return True
    return False


# ----------------------------------------------------------------------
# Rank-linear profile: index = coeff * rank + uniform
# ----------------------------------------------------------------------
def _ranklin(s, scope: str):
    """``(kind, coeff, width)`` when the set is an interval of width
    ``width`` sliding linearly in the VP rank, or None."""
    bounds = iset_bounds(s)
    if bounds is None:
        return None
    lo, hi = bounds
    lin_lo, lin_hi = _linearize(lo), _linearize(hi)
    if lin_lo is None or lin_hi is None:
        return None
    terms_lo, _ = lin_lo
    ranks = [(a, k) for a, k in terms_lo.items() if a[0] == "rank"]
    if len(ranks) != 1:
        return None
    (atom, coeff) = ranks[0]
    width = s_sub(hi, lo)
    # The non-rank remainder must be uniform and match between lo/hi.
    if vclass(width) != U_GLOBAL:
        return None
    rest = s_sub(lo, ("mul", coeff, atom) if coeff != 1 else atom)
    if not uniform_for(rest, scope):
        return None
    kind = atom[1]
    if kind == "node" and scope == "global":
        return None  # same node_rank recurs on every node
    return kind, coeff, width


# ----------------------------------------------------------------------
# Cross-VP relation
# ----------------------------------------------------------------------
def cross_vp_relation(a, b, scope: str) -> str:
    """Can two *distinct* VPs of the phase scope touch a common row,
    one through set ``a``, the other through ``b``?

    Returns ``"disjoint"`` (proven impossible), ``"overlap"`` (proven
    possible) or ``"unknown"``.  ``a is b`` poses the self-pair
    question: the same static access executed by two distinct VPs.
    """
    if a[0] == "topset" or b[0] == "topset":
        return "unknown"
    ca, cb = iset_class(a, scope), iset_class(b, scope)
    uniform_a = ca == U_GLOBAL or (scope == "node" and ca <= U_NODE)
    uniform_b = cb == U_GLOBAL or (scope == "node" and cb <= U_NODE)
    if uniform_a and uniform_b:
        # Both VPs address the very same set.
        if a == b:
            return "overlap" if iset_nonempty(a) else "unknown"
        return _const_relation(a, b)
    fa = chunk_family(a, scope)
    if fa is not None and fa == chunk_family(b, scope):
        return "disjoint"
    ra, rb = _ranklin(a, scope), _ranklin(b, scope)
    if ra is not None and ra == rb is not None:
        kind, coeff, width = ra
        if is_const(width) and width[1] <= abs(coeff):
            return "disjoint"
    return "unknown"


def _const_relation(a, b) -> str:
    """Exact relation of two fully-constant sets, else unknown."""
    ba, bb = iset_bounds(a), iset_bounds(b)
    if a[0] == "whole" and iset_nonempty(b):
        return "overlap"
    if b[0] == "whole" and iset_nonempty(a):
        return "overlap"
    if ba is None or bb is None:
        return "unknown"
    (lo1, hi1), (lo2, hi2) = ba, bb
    if le(hi1, lo2) or le(hi2, lo1):
        return "disjoint"
    if all(is_const(v) for v in (lo1, hi1, lo2, hi2)):
        inter_lo = max(lo1[1], lo2[1])
        inter_hi = min(hi1[1], hi2[1])
        if inter_lo < inter_hi and a[0] in ("pt", "iv") and b[0] in ("pt", "iv"):
            return "overlap"
    return "unknown"


def same_vp_relation(a, b) -> str:
    """Relation of two sets as addressed by *one* VP (for the
    read-after-write check): identical symbols denote equal values."""
    if a[0] == "topset" or b[0] == "topset":
        return "unknown"
    if a == b:
        return "overlap" if a[0] in ("pt", "whole") or a[0] == "iv" else "unknown"
    if a[0] == "whole" and iset_nonempty(b):
        return "overlap"
    if b[0] == "whole" and iset_nonempty(a):
        return "overlap"
    ba, bb = iset_bounds(a), iset_bounds(b)
    if ba and bb and (le(ba[1], bb[0]) or le(bb[1], ba[0])):
        return "disjoint"
    return "unknown"


# ======================================================================
# Pretty-printing
# ======================================================================
def fmt_sym(v) -> str:
    if not isinstance(v, tuple):
        return str(v)
    tag = v[0]
    if tag == "top":
        return "?"
    if tag == "const":
        return str(v[1])
    if tag in ("sym", "nodesym"):
        key = v[1]
        if isinstance(key, tuple) and key and key[0] == "expr":
            return str(key[1])
        return str(key)
    if tag == "rank":
        return f"{v[1]}_rank"
    if tag == "extent":
        return f"len({_fmt_key(v[1])})"
    if tag in ("nodelo", "nodehi"):
        which = "lo" if tag == "nodelo" else "hi"
        return f"block_{which}({_fmt_key(v[1])})"
    if tag in ("splitlo", "splithi"):
        which = "lo" if tag == "splitlo" else "hi"
        return f"chunk_{which}({fmt_sym(v[1][0])}/{fmt_sym(v[1][1])})"
    if tag == "neg":
        return f"-{fmt_sym(v[1])}"
    if tag == "mul":
        return f"{v[1]}*{fmt_sym(v[2])}"
    if tag == "add":
        parts = [
            (f"{k}*" if k not in (1, -1) else ("-" if k == -1 else ""))
            + fmt_sym(a)
            for a, k in v[1]
        ]
        if v[2]:
            parts.append(str(v[2]))
        return " + ".join(parts).replace("+ -", "- ")
    if tag in ("max", "min"):
        return f"{tag}({', '.join(fmt_sym(a) for a in v[1])})"
    return repr(v)


def _fmt_key(key) -> str:
    if isinstance(key, tuple):
        return ",".join(_fmt_key(k) for k in key if k is not None)
    return str(key)


def fmt_iset(s) -> str:
    if s[0] == "topset":
        return "<unknown rows>"
    if s[0] == "whole":
        return "[:]"
    if s[0] == "pt":
        return f"[{fmt_sym(s[1])}]"
    if s[0] == "iv":
        return f"[{fmt_sym(s[1])}:{fmt_sym(s[2])}]"
    return f"subset of [{fmt_sym(s[1])}:{fmt_sym(s[2])}]"


# ======================================================================
# Summary records
# ======================================================================
@dataclass(frozen=True)
class AccessSummary:
    """One shared-variable access with its symbolic index set."""

    variable: str  # parameter name of the shared array
    obj_index: object  # container element index (symbolic) or None
    kind: str  # "read" | "write" | "accumulate"
    op: str | None  # accumulate op name, when statically known
    iset: tuple  # the symbolic index set
    lineno: int
    stmt_id: int
    guards: tuple  # guard frames, outermost first
    expr: str  # source text of the index expression
    value_sym: object = None  # symbolic RHS value (plain writes only)
    value_width: object = None  # symbolic axis-1 width of the RHS, if known
    value_float: bool = False  # RHS provably floating-point (dtype check)

    def describe(self) -> str:
        return f"{self.variable}{fmt_iset(self.iset)} {self.kind} at line {self.lineno}"


@dataclass
class PhaseSummary:
    """Everything the verifier derived about one phase segment."""

    yield_lineno: int  # 0 = the single phase of a plain PPM function
    kind: str | None  # "global" | "node" | None (unknown)
    accesses: list = field(default_factory=list)
    certified: bool = False
    blockers: list = field(default_factory=list)  # Diagnostics
    #: Certified via rule R4 with rows that may *overlap* across VPs:
    #: same-operator accumulates combine freely (the committed value is
    #: order-independent for the simulated semantics), but the
    #: floating-point combination *order* is the global VP-rank order.
    #: Consumers that re-order the commit (the zero-merge worker-side
    #: committer) must treat such phases as uncommittable locally.
    acc_unordered: bool = False


@dataclass(frozen=True)
class DependenceEdge:
    """A cross-phase dependence on one shared variable."""

    variable: str
    src_phase: int  # yield lineno of the earlier phase
    dst_phase: int
    kind: str  # "RAW" | "WAR" | "WAW"


@dataclass
class KernelSummary:
    """Per-kernel verification result."""

    name: str
    path: str
    phases: list = field(default_factory=list)  # PhaseSummary
    edges: list = field(default_factory=list)  # DependenceEdge
    analyzable: bool = True
    reason: str | None = None  # why no certificate is possible
    liveness: object = None  # LivenessPlan (repro.analysis.liveness)

    @property
    def certified(self) -> bool:
        return self.analyzable and all(p.certified for p in self.phases)

    @property
    def certified_lines(self) -> frozenset:
        return frozenset(
            p.yield_lineno for p in self.phases if self.analyzable and p.certified
        )
