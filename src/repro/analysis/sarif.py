"""SARIF 2.1.0 export and baseline suppression for the analysis CLI.

``python -m repro.analysis verify --sarif out.sarif`` emits a static
analysis log consumable by code-review UIs (GitHub code scanning et
al.).  The baseline file is a much smaller, hand-mergeable JSON
document listing accepted findings by ``(rule, path, line)``
fingerprint: ``--baseline FILE`` suppresses matches (they surface as
``suppressions`` entries in SARIF rather than vanishing), and
``--write-baseline FILE`` records the current findings wholesale.
"""

from __future__ import annotations

import json

from repro.analysis.diagnostics import ALL_CODES, Diagnostic

__all__ = [
    "to_sarif",
    "write_sarif",
    "fingerprint",
    "load_baseline",
    "write_baseline",
    "apply_baseline",
]

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)
_DOCS_URL = "docs/DIAGNOSTICS.md"

_LEVELS = {"error": "error", "warning": "warning", "note": "note"}


def fingerprint(diag: Diagnostic) -> str:
    """Stable identity of one finding for baseline matching."""
    return f"{diag.rule}:{diag.path or '<source>'}:{diag.line or 0}"


def _rule_descriptor(rule: str) -> dict:
    return {
        "id": rule,
        "name": rule,
        "shortDescription": {
            "text": ALL_CODES.get(rule, "PPM analysis rule")
        },
        "helpUri": f"{_DOCS_URL}#{rule.lower()}",
    }


def _result(diag: Diagnostic, suppressed: bool) -> dict:
    out = {
        "ruleId": diag.rule,
        "level": _LEVELS.get(diag.severity, "note"),
        "message": {"text": diag.message},
        "locations": [
            {
                "physicalLocation": {
                    "artifactLocation": {"uri": diag.path or "<source>"},
                    "region": {"startLine": max(int(diag.line or 1), 1)},
                }
            }
        ],
        "partialFingerprints": {"ppmFingerprint/v1": fingerprint(diag)},
    }
    props = {}
    if diag.phase_index is not None:
        props["phaseIndex"] = diag.phase_index
    if diag.phase_kind is not None:
        props["phaseKind"] = diag.phase_kind
    if diag.variable is not None:
        props["variable"] = diag.variable
    if props:
        out["properties"] = props
    if suppressed:
        out["suppressions"] = [
            {"kind": "external", "justification": "baseline file"}
        ]
    return out


def to_sarif(
    diagnostics: list[Diagnostic], *, suppressed: set[str] | None = None
) -> dict:
    """SARIF 2.1.0 document for a verify run.

    ``suppressed`` is a set of :func:`fingerprint` strings (from the
    baseline); matching results carry a ``suppressions`` entry.
    """
    suppressed = suppressed or set()
    rules = sorted({d.rule for d in diagnostics})
    return {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro.analysis",
                        "informationUri": _DOCS_URL,
                        "rules": [_rule_descriptor(r) for r in rules],
                    }
                },
                "results": [
                    _result(d, fingerprint(d) in suppressed)
                    for d in diagnostics
                ],
            }
        ],
    }


def write_sarif(
    diagnostics: list[Diagnostic],
    path: str,
    *,
    suppressed: set[str] | None = None,
) -> None:
    doc = to_sarif(diagnostics, suppressed=suppressed)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, indent=2, sort_keys=True)
        fh.write("\n")


# ----------------------------------------------------------------------
# Baseline files
# ----------------------------------------------------------------------
def load_baseline(path: str) -> set[str]:
    """Fingerprint set from a baseline file (empty set if missing)."""
    try:
        with open(path, encoding="utf-8") as fh:
            doc = json.load(fh)
    except FileNotFoundError:
        return set()
    entries = doc.get("suppressions", []) if isinstance(doc, dict) else doc
    return {str(e) for e in entries}


def write_baseline(diagnostics: list[Diagnostic], path: str) -> None:
    doc = {
        "comment": (
            "Accepted repro.analysis findings; regenerate with "
            "python -m repro.analysis verify --write-baseline"
        ),
        "suppressions": sorted({fingerprint(d) for d in diagnostics}),
    }
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, indent=2)
        fh.write("\n")


def apply_baseline(
    diagnostics: list[Diagnostic], baseline: set[str]
) -> tuple[list[Diagnostic], list[Diagnostic]]:
    """Split findings into (active, suppressed) against a baseline."""
    active: list[Diagnostic] = []
    quiet: list[Diagnostic] = []
    for d in diagnostics:
        (quiet if fingerprint(d) in baseline else active).append(d)
    return active, quiet
