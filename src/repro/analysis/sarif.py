"""SARIF 2.1.0 export and baseline suppression for the analysis CLI.

``python -m repro.analysis verify --sarif out.sarif`` emits a static
analysis log consumable by code-review UIs (GitHub code scanning et
al.).  The baseline file is a much smaller, hand-mergeable JSON
document listing accepted findings by content fingerprint — rule id
plus kernel name, phase and the normalized offending expression — so
suppressions survive unrelated edits that shift line numbers.
``--baseline FILE`` suppresses matches (they surface as
``suppressions`` entries in SARIF rather than vanishing), and
``--write-baseline FILE`` records the current findings wholesale.

Baseline files are versioned.  Version 2 files hold content
fingerprints (:func:`fingerprint`); legacy version-1 files held
``rule:path:line`` strings (:func:`fingerprint_v1`) and still load —
their entries match against the v1 fingerprint, and rewriting with
``--write-baseline`` migrates them to version 2.
"""

from __future__ import annotations

import json

from repro.analysis.diagnostics import ALL_CODES, Diagnostic

__all__ = [
    "to_sarif",
    "write_sarif",
    "fingerprint",
    "fingerprint_v1",
    "load_baseline",
    "write_baseline",
    "apply_baseline",
]

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)
_DOCS_URL = "docs/DIAGNOSTICS.md"

#: Current baseline file format.  v1 files (a bare list, or a dict
#: without ``version``) hold :func:`fingerprint_v1` strings and are
#: still honoured on load.
BASELINE_VERSION = 2

_LEVELS = {"error": "error", "warning": "warning", "note": "note"}


def fingerprint_v1(diag: Diagnostic) -> str:
    """Legacy positional identity: ``rule:path:line``.

    Still emitted as a SARIF partial fingerprint and matched against
    version-1 baseline files, but brittle — any edit above the finding
    shifts the line and invalidates the suppression.
    """
    return f"{diag.rule}:{diag.path or '<source>'}:{diag.line or 0}"


def fingerprint(diag: Diagnostic) -> str:
    """Content identity of one finding for baseline matching.

    Built from the rule id, the kernel name, the phase, and the
    whitespace-normalized offending expression (falling back to the
    message when the analyzer attached no expression), so the
    suppression survives edits that merely move the finding to a
    different line.
    """
    expr = " ".join((diag.expr or diag.message).split())
    kernel = diag.kernel or ""
    if diag.phase_index is not None:
        phase = f"{diag.phase_kind or 'phase'}@{diag.phase_index}"
    else:
        phase = diag.phase_kind or ""
    return f"{diag.rule}:{kernel}:{phase}:{expr}"


def _rule_descriptor(rule: str) -> dict:
    return {
        "id": rule,
        "name": rule,
        "shortDescription": {
            "text": ALL_CODES.get(rule, "PPM analysis rule")
        },
        "helpUri": f"{_DOCS_URL}#{rule.lower()}",
    }


def _result(diag: Diagnostic, suppressed: bool) -> dict:
    out = {
        "ruleId": diag.rule,
        "level": _LEVELS.get(diag.severity, "note"),
        "message": {"text": diag.message},
        "locations": [
            {
                "physicalLocation": {
                    "artifactLocation": {"uri": diag.path or "<source>"},
                    "region": {"startLine": max(int(diag.line or 1), 1)},
                }
            }
        ],
        "partialFingerprints": {
            "ppmFingerprint/v1": fingerprint_v1(diag),
            "ppmFingerprint/v2": fingerprint(diag),
        },
    }
    props = {}
    if diag.phase_index is not None:
        props["phaseIndex"] = diag.phase_index
    if diag.phase_kind is not None:
        props["phaseKind"] = diag.phase_kind
    if diag.variable is not None:
        props["variable"] = diag.variable
    if props:
        out["properties"] = props
    if suppressed:
        out["suppressions"] = [
            {"kind": "external", "justification": "baseline file"}
        ]
    return out


def to_sarif(
    diagnostics: list[Diagnostic], *, suppressed: set[str] | None = None
) -> dict:
    """SARIF 2.1.0 document for a verify run.

    ``suppressed`` is a set of fingerprint strings (from the baseline,
    v2 content or legacy v1 positional); matching results carry a
    ``suppressions`` entry.
    """
    suppressed = suppressed or set()
    rules = sorted({d.rule for d in diagnostics})
    return {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro.analysis",
                        "informationUri": _DOCS_URL,
                        "rules": [_rule_descriptor(r) for r in rules],
                    }
                },
                "results": [
                    _result(
                        d,
                        fingerprint(d) in suppressed
                        or fingerprint_v1(d) in suppressed,
                    )
                    for d in diagnostics
                ],
            }
        ],
    }


def write_sarif(
    diagnostics: list[Diagnostic],
    path: str,
    *,
    suppressed: set[str] | None = None,
) -> None:
    doc = to_sarif(diagnostics, suppressed=suppressed)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, indent=2, sort_keys=True)
        fh.write("\n")


# ----------------------------------------------------------------------
# Baseline files
# ----------------------------------------------------------------------
def load_baseline(path: str) -> set[str]:
    """Fingerprint set from a baseline file (empty set if missing).

    Both formats load: version-2 files hold content fingerprints,
    legacy version-1 files hold ``rule:path:line`` strings.  The
    returned set is matched against *both* fingerprints of each
    finding, so old baselines keep suppressing until rewritten.
    """
    try:
        with open(path, encoding="utf-8") as fh:
            doc = json.load(fh)
    except FileNotFoundError:
        return set()
    entries = doc.get("suppressions", []) if isinstance(doc, dict) else doc
    return {str(e) for e in entries}


def write_baseline(diagnostics: list[Diagnostic], path: str) -> None:
    """Record the findings as a version-``BASELINE_VERSION`` baseline.

    Rewriting a legacy v1 baseline through this function is the
    migration path: entries come out as content fingerprints under a
    ``version`` key.
    """
    doc = {
        "version": BASELINE_VERSION,
        "comment": (
            "Accepted repro.analysis findings; regenerate with "
            "python -m repro.analysis verify --write-baseline"
        ),
        "suppressions": sorted({fingerprint(d) for d in diagnostics}),
    }
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, indent=2)
        fh.write("\n")


def apply_baseline(
    diagnostics: list[Diagnostic], baseline: set[str]
) -> tuple[list[Diagnostic], list[Diagnostic]]:
    """Split findings into (active, suppressed) against a baseline.

    A finding is suppressed when either its content fingerprint (v2)
    or its legacy positional fingerprint (v1) appears in the baseline.
    """
    active: list[Diagnostic] = []
    quiet: list[Diagnostic] = []
    for d in diagnostics:
        hit = fingerprint(d) in baseline or fingerprint_v1(d) in baseline
        (quiet if hit else active).append(d)
    return active, quiet
