"""Overlap certificates: the bridge from static proofs to the runtime.

:func:`certificate_for` runs the :mod:`repro.analysis.dataflow`
verifier over the *live* function handed to ``ppm.do`` — classifying
its actual runtime arguments instead of statically resolving the
``do`` site — and returns a :class:`KernelCertificate` naming the
phases (by ``yield`` source line) that are proven conflict-free.

``run_ppm(..., sanitize="auto")`` consults the certificate each phase
round: when every active VP is suspended at a certified yield of the
certified code object, the dynamic per-phase conflict check is
skipped and the scheduler may treat the phase's communication as
certified-overlappable.  Any VP sitting at an uncertified yield — or
any analysis failure at all — falls back to the full ``"strict"``
dynamic check, so ``"auto"`` is never less safe than ``"strict"``.
"""

from __future__ import annotations

import ast
import functools
import inspect
import textwrap
from dataclasses import dataclass, field

from repro.analysis.lint import FunctionModel, PhaseYield, SharedVar, _yield_kind

__all__ = ["KernelCertificate", "certificate_for"]

_CACHE_ATTR = "__ppm_certificates__"


@dataclass(frozen=True)
class KernelCertificate:
    """Static conflict-freedom proof for one kernel's phases."""

    name: str
    code: object  # the kernel's code object (None for plain functions)
    whole: bool  # every phase of the kernel is certified
    certified: dict = field(default_factory=dict)  # yield lineno -> kind
    summary: object = None  # the KernelSummary behind the proof
    #: Certified yield linenos whose proof leaned on rule R4 with rows
    #: that may overlap across VPs (same-op accumulates combining
    #: common elements).  The committed *value* is still certified, but
    #: the floating-point combine order is the global rank order — so
    #: these phases are excluded from worker-local (zero-merge)
    #: commits, which would reorder the combination.
    unordered: frozenset = frozenset()
    #: Names of the underlying shared variables (``GlobalShared.name``
    #: / ``NodeShared.name``, not kernel parameter names) whose commits
    #: the liveness pass proved safe to run in place: no view of the
    #: array outlives the phase segment it was taken in, so
    #: ``run_ppm(..., snapshot="pruned")`` may skip the copy-on-commit.
    prunable: frozenset = frozenset()

    def covers(self, lineno: int, kind: str) -> bool:
        if self.whole:
            return True
        return self.certified.get(lineno) == kind

    def round_certified(self, vps, kind: str) -> bool:
        """Are all *active* VPs of this round suspended at certified
        yields of the certified code object?"""
        any_active = False
        for vp in vps:
            if vp.done:
                continue
            any_active = True
            if self.whole:
                continue
            frame = getattr(vp.gen, "gi_frame", None)
            if (
                frame is None
                or frame.f_code is not self.code
                or not self.covers(frame.f_lineno, kind)
            ):
                return False
        return any_active

    def round_zero_merge(self, vps, kind: str) -> bool:
        """:meth:`round_certified`, strengthened for the zero-merge
        commit: every active VP must also sit at a phase whose
        certified writes are provably *disjoint* across VPs (no
        R4-blessed overlapping accumulates), so a per-shard commit
        applies each element's operations in the same order the global
        rank-ordered commit would."""
        if not self.round_certified(vps, kind):
            return False
        if not self.unordered:
            return True
        if self.whole:
            # Plain-function certificates cannot match lines; any
            # order-sensitive phase disables zero-merge for the kernel.
            return False
        for vp in vps:
            if vp.done:
                continue
            if vp.gen.gi_frame.f_lineno in self.unordered:
                return False
        return True


def _classify_arg(value) -> tuple[str, bool] | None:
    """(kind, container) when ``value`` is a shared handle (or a
    homogeneous list/tuple of them)."""
    from repro.core.shared import GlobalShared, NodeShared

    if isinstance(value, GlobalShared):
        return "global", False
    if isinstance(value, NodeShared):
        return "node", False
    if (
        isinstance(value, (list, tuple))
        and value
        and all(isinstance(v, (GlobalShared, NodeShared)) for v in value)
    ):
        kinds = {"global" if isinstance(v, GlobalShared) else "node" for v in value}
        if len(kinds) == 1:
            return kinds.pop(), True
    return None


def _unwrap(func):
    """Peel ``functools.partial`` layers; returns (inner, bound_args,
    bound_kwargs) with positional args in final call order."""
    pargs: list = []
    pkwargs: dict = {}
    while isinstance(func, functools.partial):
        pargs = list(func.args) + pargs
        merged = dict(func.keywords or {})
        merged.update(pkwargs)
        pkwargs = merged
        func = func.func
    return func, pargs, pkwargs


def certificate_for(func, args: tuple, kwargs: dict | None = None):
    """Analyze ``func`` as invoked by ``ppm.do(K, func, *args)``.

    Returns a :class:`KernelCertificate`, or ``None`` when the kernel
    cannot be analyzed (source unavailable, unparseable, or the
    verifier reports conflicts/unknowns).  ``None`` means "run the
    full dynamic check", never "assume safe".
    """
    inner, pargs, pkwargs = _unwrap(func)
    if not callable(inner) or isinstance(inner, type):
        return None
    classification = (
        tuple(_classify_arg(a) for a in pargs),
        tuple(_classify_arg(a) for a in args),
        tuple(sorted((k, _classify_arg(v)) for k, v in (pkwargs or {}).items())),
        tuple(sorted((k, _classify_arg(v)) for k, v in (kwargs or {}).items())),
    )
    cache = getattr(inner, _CACHE_ATTR, None)
    if cache is not None and classification in cache:
        return cache[classification]
    cert = _build_certificate(inner, pargs, pkwargs, args, kwargs or {})
    try:
        if cache is None:
            cache = {}
            setattr(inner, _CACHE_ATTR, cache)
        cache[classification] = cert
    except (AttributeError, TypeError):  # builtins, slotted callables
        pass
    return cert


def _resolver_for(fn_obj):
    """Callee resolver over a live function's ``__globals__``: maps a
    plain callee name to its ``ast.FunctionDef`` plus a sub-resolver
    scoped to *that* function's module, so the liveness pass can chase
    helpers across module boundaries (multigrid's window helpers)."""
    globalns = getattr(fn_obj, "__globals__", None) or {}

    def resolve(name):
        obj = globalns.get(name)
        if obj is None or isinstance(obj, type) or not callable(obj):
            return None
        obj, _, _ = _unwrap(obj)
        try:
            src = textwrap.dedent(inspect.getsource(obj))
            node = ast.parse(src).body[0]
        except (OSError, TypeError, SyntaxError, IndentationError,
                IndexError, ValueError):
            return None
        if not isinstance(node, ast.FunctionDef):
            return None
        return node, _resolver_for(obj)

    return resolve


def _decl_facts(value) -> tuple[int | None, str | None, str]:
    """(extent, size_expr, dtype) observed from a live shared handle;
    arrays with equal axis-0 extents share one extent group."""
    data = getattr(value, "_data", None)
    shape = getattr(data, "shape", None)
    if not shape:
        return None, None, "float"
    extent = int(shape[0])
    kind = getattr(getattr(data, "dtype", None), "kind", "f")
    dtype = "int" if kind in ("i", "u") else "float"
    return extent, str(extent), dtype


def _prunable_names(liveness, binding) -> frozenset:
    """Translate the plan's prunable *parameter* names into underlying
    shared-variable names (containers expand to every element)."""
    if liveness is None or not liveness.analyzable:
        return frozenset()
    names: set[str] = set()
    for param in liveness.prunable:
        value = binding.get(param)
        if value is None:
            continue
        elements = value if isinstance(value, (list, tuple)) else [value]
        for el in elements:
            name = getattr(el, "name", None)
            if name is not None:
                names.add(name)
    return frozenset(names)


def _build_certificate(inner, pargs, pkwargs, do_args, do_kwargs):
    from repro.analysis.dataflow import analyze_function

    try:
        lines, start = inspect.getsourcelines(inner)
        source = textwrap.dedent("".join(lines))
        tree = ast.parse(source)
    except (OSError, TypeError, SyntaxError, IndentationError):
        return None
    ast.increment_lineno(tree, start - 1)
    fn_node = next(
        (
            n
            for n in tree.body
            if isinstance(n, (ast.FunctionDef, ast.AsyncFunctionDef))
        ),
        None,
    )
    if not isinstance(fn_node, ast.FunctionDef):
        return None

    params = [a.arg for a in fn_node.args.args]
    # partial(f, p1..pk)(ctx, *do_args): params[:k] take the partial's
    # positional args, params[k] is the context, the rest take do args.
    k = len(pargs)
    if k >= len(params):
        return None
    binding: dict[str, object] = {}
    for name, value in zip(params[:k], pargs):
        binding[name] = value
    ctx_name = params[k]
    for name, value in zip(params[k + 1:], do_args):
        binding[name] = value
    for name, value in {**pkwargs, **do_kwargs}.items():
        binding.setdefault(name, value)

    shared_params: dict[str, SharedVar] = {}
    for name, value in binding.items():
        cls = _classify_arg(value)
        if cls is not None:
            extent, size_expr, dtype = (
                (None, None, "float") if cls[1] else _decl_facts(value)
            )
            shared_params[name] = SharedVar(
                name=name, kind=cls[0], container=cls[1],
                lineno=fn_node.lineno, extent=extent,
                size_expr=size_expr, dtype=dtype,
            )
    if not shared_params:
        # Nothing shared: the kernel cannot conflict with anyone.
        return KernelCertificate(
            name=fn_node.name, code=inner.__code__, whole=True
        )

    yields = [
        PhaseYield(lineno=n.lineno, kind=_yield_kind(n.value))
        for n in ast.walk(fn_node)
        if isinstance(n, ast.Yield)
    ]
    yields.sort(key=lambda y: y.lineno)
    if any(y.kind is None for y in yields):
        return None
    fn = FunctionModel(
        node=fn_node,
        name=fn_node.name,
        ctx_name=ctx_name,
        shared_params=shared_params,
        yields=yields,
    )
    path = getattr(inner, "__code__", None)
    path = path.co_filename if path is not None else "<live>"
    try:
        _diags, summary = analyze_function(
            fn, path, resolve_callee=_resolver_for(inner)
        )
    except Exception:  # never let analysis break execution
        return None
    prunable = _prunable_names(summary.liveness, binding)
    if not summary.analyzable:
        return KernelCertificate(
            name=fn_node.name, code=inner.__code__, whole=False,
            certified={}, summary=summary,
        )
    certified = {
        ph.yield_lineno: ph.kind for ph in summary.phases if ph.certified
    }
    unordered = frozenset(
        ph.yield_lineno
        for ph in summary.phases
        if ph.certified and ph.acc_unordered
    )
    if not yields:
        # Plain function: ``do`` wraps it in a single implicit phase
        # whose yield lives in the runtime wrapper, so line-level
        # matching is impossible; certify all-or-nothing instead.
        whole = bool(summary.phases) and all(
            ph.certified for ph in summary.phases
        )
        return KernelCertificate(
            name=fn_node.name, code=inner.__code__, whole=whole,
            certified={}, summary=summary, unordered=unordered,
            prunable=prunable,
        )
    whole = bool(summary.phases) and all(ph.certified for ph in summary.phases)
    # Even a fully certified generator kernel keeps per-line checking:
    # the frame test is what ties the static proof to the running code.
    return KernelCertificate(
        name=fn_node.name, code=inner.__code__, whole=False,
        certified=certified, summary=summary, unordered=unordered,
        prunable=prunable,
    )
