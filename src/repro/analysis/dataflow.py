"""Abstract interpretation of PPM kernels: static phase-conflict proofs.

This is the verifier behind ``python -m repro.analysis verify``.  It
symbolically executes a ``ppm_function``'s AST over the affine domain
of :mod:`repro.analysis.summaries`, collecting a per-phase symbolic
access summary for every shared-variable read, write and accumulate,
then proves — or fails to prove — that no two virtual processors can
write a common array row in one phase.

Diagnostics (docs/DIAGNOSTICS.md#ppm401 .. #ppm404):

* **PPM401** — provable write-write overlap between distinct VPs in
  one phase (commit order decides the value: the dynamic analogue is
  PPM201/PPM203);
* **PPM402** — a VP reads rows it wrote earlier in the same phase (the
  read observes the phase-*start* snapshot, rule R1, which is rarely
  what such code means);
* **PPM403** — ``accumulate`` calls with different combining operators
  may hit the same rows (rule R4 blesses exactly one operator per
  element per phase);
* **PPM404** — an access the verifier cannot place in the affine
  domain where it matters: the index expression and location are
  named, and the phase loses its certificate.

A phase whose write accesses are all proven pairwise disjoint (or
serialised by a single-rank guard, or blessed same-op accumulates) is
*certified*: ``run_ppm(..., sanitize="auto")`` skips the dynamic
sanitizer for it and the scheduler may treat its communication as
fully overlappable (:mod:`repro.analysis.certify`).

Certification additionally requires a statically *uniform phase
structure* — every VP must reach the same ``yield`` in the same
round — so yields may only appear at loop-body or function top level,
loops containing yields must iterate uniform iterables and start with
their yield, and rank-dependent ``continue``/``break`` must not skip
a later yield.  Violations make the kernel unanalyzable (reported,
never silently certified).
"""

from __future__ import annotations

import ast
from bisect import bisect_right
from dataclasses import replace

from repro.analysis.diagnostics import Diagnostic
from repro.analysis.lint import FunctionModel, _yield_kind, build_module_model
from repro.analysis.summaries import (
    SET_TOP,
    SET_WHOLE,
    TOP,
    U_GLOBAL,
    U_NODE,
    U_RANK,
    AccessSummary,
    DependenceEdge,
    KernelSummary,
    PhaseSummary,
    cross_vp_relation,
    is_const,
    iset_iv,
    iset_pt,
    s_add,
    s_const,
    s_max,
    s_min,
    s_mul,
    s_nodesym,
    s_rank,
    s_sub,
    s_sym,
    same_vp_relation,
    subst,
    uniform_for,
    vclass,
)

__all__ = [
    "analyze_function",
    "analyze_module",
    "verify_source",
    "verify_file",
    "verify_paths",
]


# ======================================================================
# Environment value tags (beyond plain symbolic values)
# ======================================================================
# ("shared", name, kind, container)      a shared parameter
# ("sharedelt", name, idx, kind)         one element of a container
# ("tuple", (v, ...))                    a Python tuple/list of values
# ("splitlist", span, count)             split_range(span, count)
# ("arr", lo, hi, exact)                 int array with known row bounds
# ("lmap", loopsym, template)            list built per loop iteration
# ("list", [v, ...])                     list literal under construction
# ("range", lo, hi)                      a range object
# ("coll", key) / ("scan", key)          collective handles
# ("pyconst", value)                     non-integer constant
# ("ext", path)                          unresolved module-level object
_ABSENT = ("absent",)


def _class_of(v) -> int:
    """Uniformity class of any environment value."""
    if not isinstance(v, tuple) or not v:
        return U_RANK
    tag = v[0]
    if tag in ("pyconst", "ext", "coll", "shared", "sharedelt"):
        return U_GLOBAL
    if tag == "scan":
        return U_RANK
    if tag == "tuple":
        return max((_class_of(x) for x in v[1]), default=U_GLOBAL)
    if tag in ("splitlist", "range"):
        return max(vclass(v[1]), vclass(v[2]))
    if tag == "arr":
        return max(vclass(v[1]), vclass(v[2]))
    if tag in ("lmap", "list", "lambda"):
        return U_GLOBAL  # identity uniform; elements classified on read
    return vclass(v)


def _is_sym(v) -> bool:
    """Is ``v`` a plain symbolic (integer) value?"""
    return isinstance(v, tuple) and bool(v) and v[0] in (
        "top", "const", "sym", "nodesym", "rank", "nodelo", "nodehi",
        "splitlo", "splithi", "add", "neg", "mul", "max", "min",
    )


def _frame_if(frame) -> tuple:
    """(if_id, arm) of a guard frame."""
    return frame[-2], frame[-1]


# ======================================================================
# The interpreter
# ======================================================================
class _Uncertifiable(Exception):
    pass


class KernelInterp:
    """Symbolically executes one PPM function body."""

    def __init__(self, fn: FunctionModel, path: str):
        self.fn = fn
        self.path = path
        self.accesses: list[AccessSummary] = []
        self.reasons: list[str] = []  # why certification is impossible
        self.blocking: list[Diagnostic] = []  # PPM404 for nested defs etc.
        self.yield_lines = sorted(y.lineno for y in fn.yields)
        self._loops: list[dict] = []  # enclosing loop records
        self._fresh = 0
        self._meta: dict[str, tuple] = {}  # name -> (width, is_float)

    # -- plumbing ------------------------------------------------------
    def fresh(self, key, cls: int):
        if cls >= U_RANK:
            return TOP
        return (s_nodesym if cls == U_NODE else s_sym)(key)

    def fail_cert(self, reason: str) -> None:
        if reason not in self.reasons:
            self.reasons.append(reason)

    def segment_of(self, lineno: int) -> int:
        """Index of the phase governing ``lineno`` (-1 = prologue)."""
        return bisect_right(self.yield_lines, lineno) - 1

    # -- structural certifiability pre-checks --------------------------
    def precheck(self) -> None:
        fnode = self.fn.node
        shared = set(self.fn.shared_params)

        def stmt_yields(stmt) -> list[int]:
            return [n.lineno for n in ast.walk(stmt) if isinstance(n, ast.Yield)]

        def stmt_touches_shared(stmt) -> bool:
            return any(
                isinstance(n, ast.Name) and n.id in shared
                for n in ast.walk(stmt)
            )

        def check_block(body, top: bool) -> None:
            for stmt in body:
                ylines = stmt_yields(stmt)
                if not ylines:
                    continue
                if isinstance(stmt, ast.Expr) and isinstance(
                    stmt.value, ast.Yield
                ):
                    if _yield_kind(stmt.value.value) is None:
                        self.fail_cert(
                            f"phase kind of yield at line {stmt.lineno} is "
                            "not statically known"
                        )
                    continue
                if isinstance(stmt, (ast.For, ast.While)):
                    check_loop(stmt)
                    continue
                self.fail_cert(
                    f"yield at line {ylines[0]} is nested under a "
                    f"{type(stmt).__name__} statement; phase structure is "
                    "not statically uniform"
                )

        def check_loop(loop) -> None:
            seen_yield_stmt = False
            for stmt in loop.body:
                ylines = stmt_yields(stmt)
                if not seen_yield_stmt and not ylines and stmt_touches_shared(stmt):
                    self.fail_cert(
                        f"shared access at line {stmt.lineno} precedes the "
                        "loop's first yield; it would execute in two "
                        "different phases across iterations"
                    )
                if ylines:
                    seen_yield_stmt = True
            if any(stmt_yields(s) for s in loop.orelse):
                self.fail_cert(
                    f"yield in the else-clause of the loop at line "
                    f"{loop.lineno}"
                )
            first = loop.body[0] if loop.body else None
            ok_head = (
                isinstance(first, ast.Expr)
                and isinstance(first.value, ast.Yield)
            ) or isinstance(first, (ast.For, ast.While))
            if not ok_head:
                self.fail_cert(
                    f"loop at line {loop.lineno} contains yields but does "
                    "not begin with one; phase boundaries depend on "
                    "control flow"
                )
            check_block(loop.body, top=False)

        check_block(fnode.body, top=True)

    # -- top level -----------------------------------------------------
    def run(self) -> None:
        env: dict = {}
        params = [a.arg for a in self.fn.node.args.args]
        for p in params:
            sv = self.fn.shared_params.get(p)
            if sv is not None:
                env[p] = ("shared", p, sv.kind, sv.container)
            elif p == self.fn.ctx_name:
                env[p] = ("ctx",)
            else:
                env[p] = s_sym(("param", p))
        self.precheck()
        self.exec_block(self.fn.node.body, env, (), record=False)
        self.accesses = []
        self.exec_block(self.fn.node.body, env, (), record=True)

    # -- statements ----------------------------------------------------
    def exec_block(self, body, env, guards, record: bool) -> None:
        extra = ()  # frames accrued from terminated if-arms
        for stmt in body:
            self.exec_stmt(stmt, env, guards + extra, record)
            if isinstance(stmt, ast.If) and not stmt.orelse and _terminates(
                stmt.body
            ):
                extra = extra + (self.guard_frame(stmt, 1, env, guards, record),)

    def exec_stmt(self, stmt, env, guards, record: bool) -> None:
        if isinstance(stmt, ast.Expr):
            if isinstance(stmt.value, ast.Yield):
                return
            self.eval(stmt.value, env, guards, record, stmt)
        elif isinstance(stmt, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
            self.exec_assign(stmt, env, guards, record)
        elif isinstance(stmt, ast.If):
            self.exec_if(stmt, env, guards, record)
        elif isinstance(stmt, (ast.For, ast.While)):
            self.exec_loop(stmt, env, guards, record)
        elif isinstance(stmt, ast.Continue):
            self.check_escape(stmt, guards, "continue")
        elif isinstance(stmt, ast.Break):
            self.check_escape(stmt, guards, "break")
        elif isinstance(stmt, (ast.Return, ast.Pass, ast.Raise, ast.Assert,
                               ast.Import, ast.ImportFrom, ast.Global,
                               ast.Nonlocal, ast.Delete)):
            if isinstance(stmt, ast.Return) and stmt.value is not None:
                self.eval(stmt.value, env, guards, record, stmt)
        elif isinstance(stmt, ast.With):
            for item in stmt.items:
                self.eval(item.context_expr, env, guards, record, stmt)
            self.exec_block(stmt.body, env, guards, record)
        elif isinstance(stmt, ast.Try):
            self.exec_block(stmt.body, env, guards, record)
        elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            shared = set(self.fn.shared_params)
            if any(
                isinstance(n, ast.Name) and n.id in shared
                for n in ast.walk(stmt)
            ):
                self.fail_cert(
                    f"nested function at line {stmt.lineno} touches shared "
                    "variables; not analyzed"
                )
        # anything else: no effect on the abstract state

    def check_escape(self, stmt, guards, what: str) -> None:
        for loop in reversed(self._loops):
            if loop["yields"]:
                depth = loop["guard_depth"]
                inner = guards[depth:]
                ranky = any(f[0] in ("rk", "r1") for f in inner)
                if what == "break" and ranky:
                    self.fail_cert(
                        f"rank-dependent break at line {stmt.lineno} in a "
                        "phase loop desynchronises phase rounds"
                    )
                elif what == "continue" and ranky and any(
                    y > stmt.lineno for y in loop["yields"]
                ):
                    self.fail_cert(
                        f"rank-dependent continue at line {stmt.lineno} "
                        "skips a later yield in the same loop body"
                    )
            break  # only the innermost loop matters

    # -- assignment ----------------------------------------------------
    def exec_assign(self, stmt, env, guards, record: bool) -> None:
        if isinstance(stmt, ast.AugAssign):
            targets = [stmt.target]
            value_node = stmt.value
            value = TOP
            if isinstance(stmt.target, ast.Name):
                cur = env.get(stmt.target.id, TOP)
                rhs = self.eval(stmt.value, env, guards, record, stmt)
                value = self.binop(stmt.op, cur, rhs)
            else:
                self.eval(stmt.value, env, guards, record, stmt)
        else:
            targets = stmt.targets if isinstance(stmt, ast.Assign) else [stmt.target]
            value_node = stmt.value
            if value_node is None:  # bare annotation
                return
            value = self.eval(value_node, env, guards, record, stmt)
        if isinstance(stmt, ast.AugAssign):
            if isinstance(stmt.target, ast.Name):
                w0, f0 = self._meta.get(stmt.target.id, (None, False))
                _w, f1 = self.value_meta(stmt.value, env)
                self._meta[stmt.target.id] = (
                    w0, f0 or f1 or isinstance(stmt.op, ast.Div)
                )
        else:
            for target in targets:
                if isinstance(target, ast.Name):
                    self._meta[target.id] = self.value_meta(value_node, env)
        for target in targets:
            self.bind(target, value, env, guards, record, stmt,
                      aug=isinstance(stmt, ast.AugAssign))

    def bind(self, target, value, env, guards, record, stmt, aug=False) -> None:
        if isinstance(target, ast.Name):
            env[target.id] = value
        elif isinstance(target, (ast.Tuple, ast.List)):
            elts = target.elts
            if isinstance(value, tuple) and value and value[0] == "tuple" and len(
                value[1]
            ) == len(elts):
                for t, v in zip(elts, value[1]):
                    self.bind(t, v, env, guards, record, stmt)
            else:
                cls = _class_of(value)
                for t in elts:
                    if isinstance(t, ast.Name):
                        env[t.id] = self.fresh(
                            ("unpack", t.id, t.lineno, t.col_offset), cls
                        )
                    else:
                        self.bind(t, TOP, env, guards, record, stmt)
        elif isinstance(target, ast.Subscript):
            base = self.eval(target.value, env, guards, record, stmt,
                             as_store_base=True)
            resolved = self._as_shared(base)
            if resolved is not None:
                name, obj_idx, kind = resolved
                iset = self.eval_index(target.slice, env, guards, record, stmt)
                vs = None
                if not aug and (
                    _is_sym(value)
                    or (
                        isinstance(value, tuple)
                        and len(value) == 2
                        and value[0] == "pyconst"
                        and isinstance(
                            value[1], (bool, int, float, str, type(None))
                        )
                    )
                ):
                    vs = value
                vw, vf = None, False
                if not aug and isinstance(
                    stmt, (ast.Assign, ast.AnnAssign)
                ) and getattr(stmt, "value", None) is not None:
                    vw, vf = self.value_meta(stmt.value, env)
                self.record(
                    "write", name, obj_idx, kind, iset, target, stmt, guards,
                    record, value_sym=vs, value_width=vw, value_float=vf,
                )
            else:
                self.eval_index(target.slice, env, guards, record, stmt)
        elif isinstance(target, ast.Starred):
            self.bind(target.value, TOP, env, guards, record, stmt)
        # attribute targets: no abstract effect

    # -- if / guards ---------------------------------------------------
    def guard_frame(self, if_stmt, arm: int, env, guards, record) -> tuple:
        test = if_stmt.test
        r1 = self._single_rank_test(test, env, guards, record, if_stmt)
        if r1 is not None:
            kind, key = r1
            return ("r1", kind, key, id(if_stmt), arm)
        val = self.eval(test, env, guards, record, if_stmt)
        cls = _class_of(val)
        if isinstance(test, (ast.Compare, ast.BoolOp, ast.UnaryOp)):
            cls = self._test_class(test, env, guards, record, if_stmt)
        if cls <= U_NODE:
            return ("u", cls, id(if_stmt), arm)
        return ("rk", id(if_stmt), arm)

    def _test_class(self, test, env, guards, record, stmt) -> int:
        if isinstance(test, ast.Compare):
            vals = [self.eval(test.left, env, guards, record, stmt)] + [
                self.eval(c, env, guards, record, stmt) for c in test.comparators
            ]
            return max(_class_of(v) for v in vals)
        if isinstance(test, ast.BoolOp):
            return max(
                self._test_class(v, env, guards, record, stmt)
                for v in test.values
            )
        if isinstance(test, ast.UnaryOp) and isinstance(test.op, ast.Not):
            return self._test_class(test.operand, env, guards, record, stmt)
        return _class_of(self.eval(test, env, guards, record, stmt))

    def _single_rank_test(self, test, env, guards, record, stmt):
        """``ctx.global_rank == <uniform>`` -> ("global", key)."""
        if not (
            isinstance(test, ast.Compare)
            and len(test.ops) == 1
            and isinstance(test.ops[0], ast.Eq)
        ):
            return None
        left = self.eval(test.left, env, guards, record, stmt)
        right = self.eval(test.comparators[0], env, guards, record, stmt)
        for rank, other in ((left, right), (right, left)):
            if (
                isinstance(rank, tuple)
                and rank
                and rank[0] == "rank"
                and uniform_for(other, "global" if rank[1] == "global" else "node")
            ):
                return rank[1], other
        return None

    def exec_if(self, stmt, env, guards, record: bool) -> None:
        f0 = self.guard_frame(stmt, 0, env, guards, record)
        f1 = (*f0[:-1], 1)
        body_env = dict(env)
        self.exec_block(stmt.body, body_env, guards + (f0,), record)
        else_env = dict(env)
        if stmt.orelse:
            self.exec_block(stmt.orelse, else_env, guards + (f1,), record)
        body_term = _terminates(stmt.body)
        else_term = bool(stmt.orelse) and _terminates(stmt.orelse)
        if body_term and not else_term:
            env.clear()
            env.update(else_env)
        elif else_term and not body_term:
            env.clear()
            env.update(body_env)
        else:
            merged = self.merge(body_env, else_env, key=id(stmt))
            env.clear()
            env.update(merged)

    def merge(self, a: dict, b: dict, key) -> dict:
        out = {}
        for name in set(a) | set(b):
            va, vb = a.get(name, _ABSENT), b.get(name, _ABSENT)
            out[name] = va if va == vb else self.widen(
                va, vb, ("merge", key, name)
            )
        return out

    def widen(self, old, new, key, loopsym=None):
        if old == new:
            return old
        if old == _ABSENT:
            return new
        if new == _ABSENT:
            return old
        # list growing by per-iteration appends -> symbolic map
        if (
            loopsym is not None
            and isinstance(old, tuple)
            and isinstance(new, tuple)
            and old[0] == "list"
            and new[0] == "list"
            and len(new[1]) == len(old[1]) + 1
            and new[1][: len(old[1])] == old[1]
        ):
            return ("lmap", loopsym, new[1][-1])
        if (
            isinstance(old, tuple)
            and isinstance(new, tuple)
            and old[0] == "tuple"
            and new[0] == "tuple"
            and len(old[1]) == len(new[1])
        ):
            return (
                "tuple",
                tuple(
                    self.widen(x, y, ("t", key, i), loopsym)
                    for i, (x, y) in enumerate(zip(old, new))
                    for x, y in [(x, y)]
                )
                if False
                else tuple(
                    self.widen(x, y, ("t", key, i), loopsym)
                    for i, (x, y) in enumerate(zip(old[1], new[1]))
                ),
            )
        # collective handles stay collective (the .value stays uniform)
        tags = {old[0] if isinstance(old, tuple) and old else None,
                new[0] if isinstance(new, tuple) and new else None}
        if "coll" in tags and tags <= {"coll", "pyconst"}:
            return ("coll", ("widen", key))
        cls = max(_class_of(old), _class_of(new))
        return self.fresh(("widen", key), cls)

    # -- loops ---------------------------------------------------------
    def exec_loop(self, stmt, env, guards, record: bool) -> None:
        yields = [
            n.lineno for n in ast.walk(stmt) if isinstance(n, ast.Yield)
        ]
        loopsym = None
        if isinstance(stmt, ast.For):
            itv = self.eval(stmt.iter, env, guards, record, stmt)
            if yields and _class_of(itv) != U_GLOBAL:
                self.fail_cert(
                    f"loop at line {stmt.lineno} yields phases but its "
                    "iterable is not provably uniform across VPs"
                )
            loopsym = self.bind_loop_target(stmt.target, itv, env)
        else:
            cls = self._test_class(stmt.test, env, guards, record, stmt)
            if yields and cls > U_GLOBAL:
                self.fail_cert(
                    f"while-loop at line {stmt.lineno} yields phases but "
                    "its condition is not provably uniform across VPs"
                )
        self._loops.append(
            {"yields": yields, "guard_depth": len(guards)}
        )
        try:
            # Pass A: discover the loop's effect on the environment and
            # widen every changed binding to a stable fixed point.
            before = dict(env)
            self.exec_block(stmt.body, env, guards, record=False)
            for name in set(env) | set(before):
                old = before.get(name, _ABSENT)
                new = env.get(name, _ABSENT)
                if old != new:
                    env[name] = self.widen(
                        old, new, ("loop", id(stmt), name), loopsym=loopsym
                    )
            # Pass B: interpret once more over the widened environment,
            # recording accesses if requested.
            if record:
                self.exec_block(stmt.body, env, guards, record=True)
        finally:
            self._loops.pop()
        for s in stmt.orelse:
            self.exec_stmt(s, env, guards, record)

    def bind_loop_target(self, target, itv, env):
        """Bind the loop variable(s); returns the placeholder sym of a
        single-name target (for the lmap widening pattern)."""
        cls = _class_of(itv)
        elem: object = None
        if isinstance(itv, tuple) and itv:
            if itv[0] == "range":
                elem = self.fresh(("loopvar", target.lineno, target.col_offset),
                                  max(vclass(itv[1]), vclass(itv[2])))
            elif itv[0] == "lmap":
                ph = self.fresh(("loopvar", target.lineno, target.col_offset),
                                U_GLOBAL)
                elem = subst(itv[2], {itv[1]: ph})
            elif itv[0] == "list":
                elem = self.widen_all(itv[1], ("loopelems", target.lineno))
            elif itv[0] == "tuple":
                elem = self.widen_all(list(itv[1]), ("loopelems", target.lineno))
            elif itv[0] == "arr":
                elem = TOP
        if elem is None:
            elem = self.fresh(
                ("loopvar", target.lineno, target.col_offset), cls
            )
        if isinstance(target, ast.Name):
            env[target.id] = elem
            return elem if _is_sym(elem) else None
        if isinstance(target, (ast.Tuple, ast.List)):
            if isinstance(elem, tuple) and elem and elem[0] == "tuple" and len(
                elem[1]
            ) == len(target.elts):
                for t, v in zip(target.elts, elem[1]):
                    if isinstance(t, ast.Name):
                        env[t.id] = v
            else:
                ecls = _class_of(elem)
                for t in target.elts:
                    if isinstance(t, ast.Name):
                        env[t.id] = self.fresh(
                            ("loopvar", t.id, t.lineno, t.col_offset), ecls
                        )
        return None

    def widen_all(self, values, key):
        out = _ABSENT
        for i, v in enumerate(values):
            out = v if out == _ABSENT else self.widen(out, v, (key, "all"))
        return TOP if out == _ABSENT else out

    # ==================================================================
    # Expressions
    # ==================================================================
    def eval(self, node, env, guards, record, stmt, as_store_base=False):
        if node is None:
            return ("pyconst", None)
        if isinstance(node, ast.Constant):
            v = node.value
            if isinstance(v, bool) or not isinstance(v, int):
                return ("pyconst", v)
            return s_const(v)
        if isinstance(node, ast.Name):
            if node.id in env:
                return env[node.id]
            return ("ext", (node.id,))
        if isinstance(node, ast.Attribute):
            return self.eval_attr(node, env, guards, record, stmt)
        if isinstance(node, ast.Call):
            return self.eval_call(node, env, guards, record, stmt)
        if isinstance(node, ast.Subscript):
            return self.eval_subscript(
                node, env, guards, record, stmt, as_store_base
            )
        if isinstance(node, ast.BinOp):
            left = self.eval(node.left, env, guards, record, stmt)
            right = self.eval(node.right, env, guards, record, stmt)
            return self.binop(node.op, left, right)
        if isinstance(node, ast.UnaryOp):
            v = self.eval(node.operand, env, guards, record, stmt)
            if isinstance(node.op, ast.USub) and _is_sym(v):
                return s_sub(s_const(0), v)
            return self.opaque(node, (v,))
        if isinstance(node, (ast.Tuple, ast.List)):
            vals = tuple(
                self.eval(e, env, guards, record, stmt) for e in node.elts
            )
            if isinstance(node, ast.List):
                return ("list", list(vals))
            return ("tuple", vals)
        if isinstance(node, ast.Compare):
            vals = [self.eval(node.left, env, guards, record, stmt)] + [
                self.eval(c, env, guards, record, stmt)
                for c in node.comparators
            ]
            return self.opaque(node, vals)
        if isinstance(node, ast.BoolOp):
            vals = [self.eval(v, env, guards, record, stmt) for v in node.values]
            return self.opaque(node, vals)
        if isinstance(node, ast.IfExp):
            self.eval(node.test, env, guards, record, stmt)
            a = self.eval(node.body, env, guards, record, stmt)
            b = self.eval(node.orelse, env, guards, record, stmt)
            return a if a == b else self.widen(a, b, ("ifexp", node.lineno,
                                                      node.col_offset))
        if isinstance(node, (ast.ListComp, ast.SetComp, ast.GeneratorExp)):
            return self.eval_comp(node, env, guards, record, stmt)
        if isinstance(node, ast.Lambda):
            inner = dict(env)
            for a in node.args.args:
                inner[a.arg] = TOP
            self.eval(node.body, inner, guards, record, stmt)
            return ("lambda", None)
        if isinstance(node, ast.Starred):
            return self.eval(node.value, env, guards, record, stmt)
        if isinstance(node, ast.JoinedStr):
            return ("pyconst", "<fstring>")
        # walk unknown expression kinds for shared reads, then give up
        for sub in ast.iter_child_nodes(node):
            if isinstance(sub, ast.expr):
                self.eval(sub, env, guards, record, stmt)
        return TOP

    def binop(self, op, a, b):
        if _is_sym(a) and _is_sym(b):
            if isinstance(op, ast.Add):
                return s_add(a, b)
            if isinstance(op, ast.Sub):
                return s_sub(a, b)
            if isinstance(op, ast.Mult):
                return s_mul(a, b)
        cls = max(_class_of(a), _class_of(b))
        key = ("binop", type(op).__name__, a, b)
        return self.fresh(key, cls)

    def opaque(self, node, args):
        cls = max((_class_of(a) for a in args), default=U_GLOBAL)
        try:
            text = ast.unparse(node)
        except Exception:  # pragma: no cover - unparse is total on 3.9+
            text = f"<expr@{node.lineno}>"
        return self.fresh(("expr", text, tuple(map(repr, args))), cls)

    # -- attributes ----------------------------------------------------
    def eval_attr(self, node, env, guards, record, stmt):
        base = self.eval(node.value, env, guards, record, stmt)
        attr = node.attr
        if isinstance(base, tuple) and base:
            tag = base[0]
            if tag == "ctx":
                if attr == "node_rank":
                    return s_rank("node")
                if attr == "global_rank":
                    return s_rank("global")
                if attr == "node_id":
                    return s_nodesym(("node_id",))
                if attr == "node_vp_count":
                    return s_nodesym(("node_vp_count",))
                if attr in ("global_vp_count", "node_count", "cores_per_node"):
                    return s_sym((attr,))
                if attr in ("global_phase", "node_phase"):
                    return ("pyconst", attr)
                return ("ctxattr", attr)
            if tag == "coll" and attr == "value":
                return s_sym(("collval", base[1]))
            if tag == "scan" and attr == "value":
                return TOP
            if tag == "ext":
                return ("ext", base[1] + (attr,))
            if tag in ("shared", "sharedelt"):
                return ("sharedattr", base, attr)
            if tag == "arr" and attr == "size":
                return self.fresh(("size", base), _class_of(base))
        cls = _class_of(base)
        return self.fresh(("attr", repr(base), attr), cls)

    # -- calls ---------------------------------------------------------
    def eval_call(self, node, env, guards, record, stmt):
        func = node.func
        # Method calls with receiver semantics
        if isinstance(func, ast.Attribute):
            recv = self.eval(func.value, env, guards, record, stmt)
            out = self.method_call(
                node, func, recv, env, guards, record, stmt
            )
            if out is not NotImplemented:
                return out
        dotted = _dotted_name(func)
        args = node.args
        if dotted is not None:
            tail = dotted.split(".")[-1]
            if tail == "split_range" and len(args) == 2:
                span = self.eval(args[0], env, guards, record, stmt)
                count = self.eval(args[1], env, guards, record, stmt)
                if _is_sym(span) and _is_sym(count):
                    return ("splitlist", span, count)
            if tail == "arange" and args:
                vals = [
                    self.eval(a, env, guards, record, stmt) for a in args[:2]
                ]
                if len(vals) == 1:
                    vals = [s_const(0), vals[0]]
                if all(_is_sym(v) for v in vals):
                    return ("arr", vals[0], vals[1], True)
            if tail == "range" and isinstance(func, ast.Name):
                vals = [
                    self.eval(a, env, guards, record, stmt) for a in args[:2]
                ]
                if len(vals) == 1:
                    vals = [s_const(0), vals[0]]
                if len(vals) == 2 and all(_is_sym(v) for v in vals):
                    return ("range", vals[0], vals[1])
            if tail in ("max", "min") and isinstance(func, ast.Name):
                vals = [self.eval(a, env, guards, record, stmt) for a in args]
                if all(_is_sym(v) for v in vals) and len(vals) >= 2:
                    return (s_max if tail == "max" else s_min)(*vals)
            if tail in ("int", "float") and len(args) == 1:
                v = self.eval(args[0], env, guards, record, stmt)
                return v if _is_sym(v) else self.fresh(
                    ("cast", repr(v)), _class_of(v)
                )
            if tail in ("enumerate", "zip"):
                vals = tuple(
                    self.eval(a, env, guards, record, stmt) for a in args
                )
                cls = max((_class_of(v) for v in vals), default=U_GLOBAL)
                return self.fresh(("iter", node.lineno, node.col_offset), cls)
        # Generic call: evaluate everything (recording reads), result is
        # opaque with the worst argument class.
        vals = [self.eval(a, env, guards, record, stmt) for a in node.args]
        vals += [
            self.eval(kw.value, env, guards, record, stmt)
            for kw in node.keywords
        ]
        if isinstance(func, ast.Attribute):
            vals.append(self.eval(func.value, env, guards, record, stmt))
        cls = max((_class_of(v) for v in vals), default=U_GLOBAL)
        try:
            text = ast.unparse(func)
        except Exception:  # pragma: no cover
            text = f"<call@{node.lineno}>"
        return self.fresh(
            ("callexpr", text, tuple(map(repr, vals))), cls
        )

    def method_call(self, node, func, recv, env, guards, record, stmt):
        attr = func.attr
        shared = self._as_shared(recv)
        if shared is not None:
            name, obj_idx, kind = shared
            if attr == "accumulate":
                iset = SET_TOP
                if node.args:
                    iset = self.value_to_iset(
                        self.eval(node.args[0], env, guards, record, stmt)
                    )
                for a in node.args[1:]:
                    self.eval(a, env, guards, record, stmt)
                op = "add"
                for kw in node.keywords:
                    v = self.eval(kw.value, env, guards, record, stmt)
                    if kw.arg == "op":
                        op = v[1] if v[0] == "pyconst" else None
                if len(node.args) >= 3:
                    opv = self.eval(node.args[2], env, guards, record, stmt)
                    op = opv[1] if opv[0] == "pyconst" else None
                self.record(
                    "accumulate", name, obj_idx, kind, iset, node, stmt,
                    guards, record, op=op,
                )
                return ("pyconst", None)
            if attr == "local_range":
                argv = (
                    self.eval(node.args[0], env, guards, record, stmt)
                    if node.args
                    else TOP
                )
                if argv == s_nodesym(("node_id",)):
                    pk = (name, repr(obj_idx))
                    return ("tuple", (("nodelo", pk), ("nodehi", pk)))
                key = ("local_range", name, repr(obj_idx), repr(argv))
                return ("tuple", (s_sym(key + ("lo",)), s_sym(key + ("hi",))))
            # other shared-handle methods (.instance(), .snapshot(), ...)
            for a in node.args:
                self.eval(a, env, guards, record, stmt)
            return self.fresh(("sharedcall", name, attr, node.lineno), U_GLOBAL)
        if isinstance(recv, tuple) and recv and recv[0] == "ctx":
            if attr in ("reduce", "scan"):
                for a in node.args:
                    self.eval(a, env, guards, record, stmt)
                key = ("ph", node.lineno, node.col_offset)
                return ("coll", key) if attr == "reduce" else ("scan", key)
            if attr == "phase":
                return ("pyconst", "phase")
            if attr in ("work", "mem_work"):
                for a in node.args:
                    self.eval(a, env, guards, record, stmt)
                return ("pyconst", None)
        if attr == "append" and isinstance(func.value, ast.Name):
            lst = env.get(func.value.id)
            if isinstance(lst, tuple) and lst and lst[0] == "list":
                v = self.eval(node.args[0], env, guards, record, stmt)
                env[func.value.id] = ("list", lst[1] + [v])
                return ("pyconst", None)
        return NotImplemented

    # -- comprehensions ------------------------------------------------
    def eval_comp(self, node, env, guards, record, stmt):
        inner = dict(env)
        loopsyms = []
        for gen in node.generators:
            itv = self.eval(gen.iter, inner, guards, record, stmt)
            ph = self.bind_loop_target(gen.target, itv, inner)
            loopsyms.append(ph)
            for cond in gen.ifs:
                self.eval(cond, inner, guards, record, stmt)
        elt = getattr(node, "elt", None)
        if elt is None:
            return TOP
        v = self.eval(elt, inner, guards, record, stmt)
        if isinstance(node, ast.ListComp):
            ph = loopsyms[0] if loopsyms else None
            if ph is not None and any(ph == t for t in _sym_leaves(v)):
                return ("lmap", ph, v)
            return ("list", [v]) if v != TOP else TOP
        return self.fresh(("comp", node.lineno, node.col_offset),
                          _class_of(v))

    # -- subscripts ----------------------------------------------------
    def eval_subscript(self, node, env, guards, record, stmt, as_store_base):
        base = self.eval(node.value, env, guards, record, stmt)
        if isinstance(base, tuple) and base:
            tag = base[0]
            if tag == "shared" and base[3]:  # container: select element
                idx = self.index_value(node.slice, env, guards, record, stmt)
                return ("sharedelt", base[1], idx, base[2])
            if tag in ("shared", "sharedelt"):
                if as_store_base:
                    # e.g. ``X[rows][k] = v`` — outer store resolves here
                    return base
                name, obj_idx, kind = self._as_shared(base)
                iset = self.eval_index(node.slice, env, guards, record, stmt)
                self.record(
                    "read", name, obj_idx, kind, iset, node, stmt, guards,
                    record,
                )
                from repro.analysis.summaries import iset_class

                cls = iset_class(iset, "global")
                return self.fresh(("readval", name, repr(obj_idx), iset), cls)
            if tag == "splitlist":
                idx = self.index_value(node.slice, env, guards, record, stmt)
                if isinstance(idx, tuple) and idx and idx[0] == "rank":
                    sk = (base[1], base[2], idx[1])
                    return ("tuple", (("splitlo", sk), ("splithi", sk)))
                key = ("split", base[1], base[2], repr(idx))
                cls = max(_class_of(base), _class_of(idx))
                return (
                    "tuple",
                    (
                        self.fresh(key + ("lo",), cls),
                        self.fresh(key + ("hi",), cls),
                    ),
                )
            if tag == "tuple":
                idx = self.index_value(node.slice, env, guards, record, stmt)
                if is_const(idx) and 0 <= idx[1] < len(base[1]):
                    return base[1][idx[1]]
                return self.widen_all(
                    list(base[1]), ("tupidx", node.lineno, node.col_offset)
                )
            if tag in ("list", "lmap"):
                idx = self.index_value(node.slice, env, guards, record, stmt)
                if tag == "list":
                    if is_const(idx) and 0 <= idx[1] < len(base[1]):
                        return base[1][idx[1]]
                    return self.widen_all(
                        base[1], ("listidx", node.lineno, node.col_offset)
                    )
                if _is_sym(idx):
                    return subst(base[2], {base[1]: idx})
                return TOP
            if tag == "arr":
                # any further indexing selects a subset of the values
                self.index_value(node.slice, env, guards, record, stmt)
                return ("arr", base[1], base[2], False)
        # Boolean-mask refinement: ``rows[(rows >= lo) & (rows < hi)]``
        refined = self.mask_pattern(node, env, guards, record, stmt)
        if refined is not None:
            return refined
        idx = self.index_value(node.slice, env, guards, record, stmt)
        cls = max(_class_of(base), _class_of(idx))
        if cls == U_GLOBAL and isinstance(base, tuple) and base and base[0] in (
            "ext", "sym", "nodesym", "sharedattr"
        ):
            return self.fresh(("getitem", repr(base), repr(idx)), cls)
        return self.fresh(
            ("getitem", node.lineno, node.col_offset, repr(idx)), cls
        )

    def mask_pattern(self, node, env, guards, record, stmt):
        """``base[(base >= lo) & (base < hi)]`` — the result's values
        are a subset of ``[lo, hi)`` whatever ``base`` holds."""
        if not isinstance(node.value, ast.Name):
            return None
        bname = node.value.id
        m = node.slice
        if not (isinstance(m, ast.BinOp) and isinstance(m.op, ast.BitAnd)):
            return None
        lo = hi = None
        for side in (m.left, m.right):
            if not (
                isinstance(side, ast.Compare)
                and len(side.ops) == 1
                and isinstance(side.left, ast.Name)
                and side.left.id == bname
            ):
                return None
            bound = self.eval(
                side.comparators[0], env, guards, record, stmt
            )
            if not _is_sym(bound):
                return None
            op = side.ops[0]
            if isinstance(op, ast.GtE):
                lo = bound
            elif isinstance(op, ast.Gt):
                lo = s_add(bound, s_const(1))
            elif isinstance(op, ast.Lt):
                hi = bound
            elif isinstance(op, ast.LtE):
                hi = s_add(bound, s_const(1))
            else:
                return None
        if lo is None or hi is None:
            return None
        return ("arr", lo, hi, False)

    # -- index sets ----------------------------------------------------
    def index_value(self, slc, env, guards, record, stmt):
        if isinstance(slc, ast.Slice):
            return TOP
        return self.eval(slc, env, guards, record, stmt)

    def eval_index(self, slc, env, guards, record, stmt) -> tuple:
        """The axis-0 index set of a subscript's slice expression."""
        if isinstance(slc, ast.Tuple) and slc.elts:
            # multi-axis: rows are axis 0; evaluate the rest for reads
            for extra in slc.elts[1:]:
                if not isinstance(extra, ast.Slice):
                    self.eval(extra, env, guards, record, stmt)
            return self.eval_index(slc.elts[0], env, guards, record, stmt)
        if isinstance(slc, ast.Slice):
            if slc.lower is None and slc.upper is None and slc.step is None:
                return SET_WHOLE
            lo = (
                s_const(0)
                if slc.lower is None
                else self.eval(slc.lower, env, guards, record, stmt)
            )
            hi = (
                self.fresh(("alen", id(stmt)), U_GLOBAL)
                if slc.upper is None
                else self.eval(slc.upper, env, guards, record, stmt)
            )
            exact = True
            if slc.step is not None:
                stepv = self.eval(slc.step, env, guards, record, stmt)
                if is_const(stepv, 1):
                    pass
                elif is_const(stepv):
                    exact = False
                else:
                    return SET_TOP
            if not (_is_sym(lo) and _is_sym(hi)):
                return SET_TOP
            # Negative bounds would wrap; constants tell us directly.
            if (is_const(lo) and lo[1] < 0) or (is_const(hi) and hi[1] < 0):
                return SET_TOP
            return iset_iv(lo, hi, exact=exact)
        return self.value_to_iset(self.eval(slc, env, guards, record, stmt))

    def value_to_iset(self, v) -> tuple:
        if _is_sym(v):
            if v == TOP:
                return SET_TOP
            if is_const(v) and v[1] < 0:
                return SET_TOP
            return iset_pt(v)
        if isinstance(v, tuple) and v:
            if v[0] == "arr":
                return iset_iv(v[1], v[2], exact=bool(v[3]))
            if v[0] == "range":
                return iset_iv(v[1], v[2], exact=True)
            if v[0] == "list" and v[1] and all(_is_sym(e) for e in v[1]):
                if len(v[1]) == 1:
                    return self.value_to_iset(v[1][0])
                if all(is_const(e) for e in v[1]):
                    vals = sorted(e[1] for e in v[1])
                    if vals[0] >= 0:
                        exact = vals == list(range(vals[0], vals[-1] + 1))
                        return iset_iv(
                            s_const(vals[0]), s_const(vals[-1] + 1),
                            exact=exact,
                        )
        return SET_TOP

    # -- value shape/dtype metadata (PPM408) ---------------------------
    def value_meta(self, node, env) -> tuple:
        """``(width, is_float)`` of an RHS expression: the symbolic
        axis-0 length of the value when statically known, and whether
        the value is provably floating-point (float constants and true
        division only — everything else stays unknown)."""
        if isinstance(node, ast.Constant):
            return None, isinstance(node.value, float)
        if isinstance(node, ast.Name):
            got = self._meta.get(node.id)
            if got is not None:
                return got
            v = env.get(node.id)
            if isinstance(v, tuple) and v and v[0] == "arr" and v[3]:
                return s_sub(v[2], v[1]), False
            return None, False
        if isinstance(node, ast.Subscript):
            _w, base_f = self.value_meta(node.value, env)
            slc = node.slice
            if isinstance(slc, ast.Tuple) and slc.elts:
                slc = slc.elts[0]
            if isinstance(slc, ast.Slice) and slc.step is None:
                lo = (
                    s_const(0)
                    if slc.lower is None
                    else self.eval(slc.lower, env, (), False, node)
                )
                hi = (
                    None
                    if slc.upper is None
                    else self.eval(slc.upper, env, (), False, node)
                )
                if (
                    hi is not None
                    and _is_sym(lo)
                    and _is_sym(hi)
                    and not (is_const(lo) and lo[1] < 0)
                    and not (is_const(hi) and hi[1] < 0)
                ):
                    return s_sub(hi, lo), base_f
            return None, base_f
        if isinstance(node, ast.BinOp):
            wl, fl = self.value_meta(node.left, env)
            wr, fr = self.value_meta(node.right, env)
            w = wl if wr is None else wr if wl is None else (
                wl if wl == wr else None
            )
            return w, fl or fr or isinstance(node.op, ast.Div)
        if isinstance(node, ast.UnaryOp):
            return self.value_meta(node.operand, env)
        if isinstance(node, ast.Call):
            dotted = _dotted_name(node.func)
            tail = dotted.split(".")[-1] if dotted else None
            if tail in ("zeros", "ones", "empty", "full") and node.args:
                size = node.args[0]
                if isinstance(size, ast.Tuple) and size.elts:
                    size = size.elts[0]
                v = self.eval(size, env, (), False, node)
                return (v if _is_sym(v) and v != TOP else None), False
            if tail == "arange" and node.args:
                vals = [
                    self.eval(a, env, (), False, node)
                    for a in node.args[:2]
                ]
                if len(vals) == 1:
                    vals = [s_const(0), vals[0]]
                if all(_is_sym(v) for v in vals):
                    return s_sub(vals[1], vals[0]), False
            if tail == "float" and isinstance(node.func, ast.Name):
                return None, True
            return None, False
        return None, False

    # -- shared resolution & access recording --------------------------
    def _as_shared(self, v):
        if isinstance(v, tuple) and v:
            if v[0] == "shared" and not v[3]:
                return v[1], None, v[2]
            if v[0] == "sharedelt":
                return v[1], v[2], v[3]
        return None

    def record(
        self, kind, name, obj_idx, var_kind, iset, node, stmt, guards,
        record, op=None, value_sym=None, value_width=None, value_float=False,
    ) -> None:
        if not record:
            return
        lineno = getattr(node, "lineno", stmt.lineno)
        self.accesses.append(
            AccessSummary(
                variable=name,
                obj_index=obj_idx,
                kind=kind,
                op=op,
                iset=iset,
                lineno=lineno,
                stmt_id=len(self.accesses),
                guards=guards,
                expr=_index_text(node),
                value_sym=value_sym,
                value_width=value_width,
                value_float=value_float,
            )
        )


def _sym_leaves(v):
    if isinstance(v, tuple):
        yield v
        for x in v:
            yield from _sym_leaves(x)


def _dotted_name(node) -> str | None:
    parts = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _terminates(body: list) -> bool:
    if not body:
        return False
    last = body[-1]
    if isinstance(last, (ast.Continue, ast.Break, ast.Return, ast.Raise)):
        return True
    if isinstance(last, ast.If) and last.orelse:
        return _terminates(last.body) and _terminates(last.orelse)
    return False


def _index_text(node) -> str:
    try:
        if isinstance(node, ast.Subscript):
            return ast.unparse(node)
        return ast.unparse(node)
    except Exception:  # pragma: no cover
        return "<expr>"


# ======================================================================
# Conflict analysis over the collected summaries
# ======================================================================
def _r1_valid(frame, scope: str) -> bool:
    # Only the equality arm (arm 0) pins execution to one rank; the
    # else arm runs on *every other* rank and must not count.
    return frame[4] == 0 and (frame[1] == "global" or scope == "node")


def _cross_vp_excluded(a: AccessSummary, b: AccessSummary, scope: str) -> bool:
    """Can we rule out that two *distinct* VPs execute ``a`` and ``b``
    in one round (one VP doing ``a``, the other ``b``)?"""
    a_r1 = [f for f in a.guards if f[0] == "r1" and _r1_valid(f, scope)]
    if a is b:
        return bool(a_r1)
    b_r1 = [f for f in b.guards if f[0] == "r1" and _r1_valid(f, scope)]
    for fa in a_r1:
        for fb in b_r1:
            if fa[1] == fb[1] and fa[2] == fb[2]:
                return True  # both run on the same single rank
    lim = U_GLOBAL if scope == "global" else U_NODE
    a_u = {
        (f[2], f[3]) for f in a.guards if f[0] == "u" and f[1] <= lim
    }
    b_u = {
        (f[2], f[3]) for f in b.guards if f[0] == "u" and f[1] <= lim
    }
    for if_id, arm in a_u:
        if any(bi == if_id and ba != arm for bi, ba in b_u):
            return True  # mutually exclusive uniform branches
    return False


def _same_vp_excluded(a: AccessSummary, b: AccessSummary) -> bool:
    af = {_frame_if(f) for f in a.guards}
    bf = {_frame_if(f) for f in b.guards}
    return any(
        ai == bi and aa != ba for ai, aa in af for bi, ba in bf
    )


def _objects_distinct(a: AccessSummary, b: AccessSummary) -> bool:
    """U[l] vs U[l+1]: container elements at provably different
    indices are different arrays."""
    if a.obj_index is None and b.obj_index is None:
        return False
    if a.obj_index is None or b.obj_index is None:
        return True  # different parameters handle this before; safe
    diff = s_sub(a.obj_index, b.obj_index)
    return is_const(diff) and diff[1] != 0


def _diag(
    rule, severity, message, path, access: AccessSummary, seg: int, kind,
    kernel=None,
) -> Diagnostic:
    return Diagnostic(
        tool="dataflow",
        rule=rule,
        severity=severity,
        message=message,
        path=path,
        line=access.lineno,
        phase_index=seg if seg >= 0 else None,
        phase_kind=kind,
        variable=access.variable,
        expr=access.expr,
        kernel=kernel,
    )


def analyze_function(
    fn: FunctionModel, path: str, resolve_callee=None
) -> tuple[list, KernelSummary]:
    """Verify one PPM function; returns (diagnostics, summary).

    ``resolve_callee`` optionally maps a called function's name to its
    ``ast.FunctionDef`` so the liveness pass can analyze helper effects
    interprocedurally (same-module statically, or through the live
    ``__globals__`` when certifying a real function object)."""
    interp = KernelInterp(fn, path)
    try:
        interp.run()
    except RecursionError:  # pragma: no cover - pathological inputs
        interp.fail_cert("kernel too deeply nested to analyze")
    summary = KernelSummary(name=fn.name, path=path)
    if interp.reasons:
        summary.analyzable = False
        summary.reason = "; ".join(interp.reasons)
    diags: list[Diagnostic] = []

    yields = sorted(fn.yields, key=lambda y: y.lineno)
    segments: dict[int, PhaseSummary] = {}
    if yields:
        for i, y in enumerate(yields):
            segments[i] = PhaseSummary(yield_lineno=y.lineno, kind=y.kind)
    else:
        segments[0] = PhaseSummary(yield_lineno=0, kind="global")

    by_seg: dict[int, list[AccessSummary]] = {}
    for acc in interp.accesses:
        seg = interp.segment_of(acc.lineno) if yields else 0
        if seg < 0:
            # Shared access in the VP-private prologue: PPM101 territory
            # (lint); the kernel cannot be certified.
            summary.analyzable = False
            summary.reason = summary.reason or (
                f"shared access at line {acc.lineno} in the VP-private "
                "prologue"
            )
            continue
        by_seg.setdefault(seg, []).append(acc)
        segments[seg].accesses.append(acc)

    for seg, phase in segments.items():
        accs = by_seg.get(seg, [])
        blockers = _check_segment(accs, phase, seg, path)
        phase.blockers = blockers
        diags.extend(blockers)
        hard = [d for d in blockers if d.rule != "PPM402"]
        phase.certified = summary.analyzable and not hard

    summary.phases = [segments[i] for i in sorted(segments)]
    summary.edges = _dependence_edges(summary.phases)

    from repro.analysis.bounds import check_bounds_and_shapes
    from repro.analysis.liveness import analyze_liveness

    diags.extend(check_bounds_and_shapes(fn, summary, path))
    plan, live_diags = analyze_liveness(
        fn, summary, path, resolve_callee=resolve_callee
    )
    summary.liveness = plan
    diags.extend(live_diags)
    diags = [
        replace(d, kernel=fn.name) if d.kernel is None else d for d in diags
    ]
    for phase in summary.phases:
        phase.blockers = [
            replace(d, kernel=fn.name) if d.kernel is None else d
            for d in phase.blockers
        ]
    return diags, summary


def _scope_for(phase_kind, var_kind) -> str:
    if phase_kind == "node" and var_kind == "node":
        return "node"
    return "global"


def _check_segment(accs, phase: PhaseSummary, seg: int, path: str) -> list:
    diags: list[Diagnostic] = []
    writes = [a for a in accs if a.kind in ("write", "accumulate")]
    reads = [a for a in accs if a.kind == "read"]
    var_kind_of = {}  # unused placeholder for clarity

    # -- write/write conflicts across VPs ------------------------------
    reported = set()
    for i, a in enumerate(writes):
        for b in writes[i:]:
            if a.variable != b.variable or _objects_distinct(a, b):
                continue
            scope = _scope_for(phase.kind, None)
            if (
                a.kind == "accumulate"
                and b.kind == "accumulate"
                and a.op is not None
                and a.op == b.op
            ):
                # Rule R4: one commutative op combines freely.  Still
                # record whether the combined rows may overlap across
                # VPs — the committed value is certified either way,
                # but an overlapping combine is order-sensitive at the
                # floating-point level, which the zero-merge committer
                # must know (see PhaseSummary.acc_unordered).
                if not _cross_vp_excluded(a, b, scope):
                    if cross_vp_relation(a.iset, b.iset, scope) != "disjoint":
                        phase.acc_unordered = True
                continue
            if _cross_vp_excluded(a, b, scope):
                continue
            rel = cross_vp_relation(a.iset, b.iset, scope)
            if rel == "disjoint":
                continue
            key = (a.lineno, b.lineno, a.variable)
            if key in reported:
                continue
            reported.add(key)
            both_acc = a.kind == "accumulate" and b.kind == "accumulate"
            if rel == "overlap":
                if both_acc:
                    diags.append(_diag(
                        "PPM403", "error",
                        f"accumulate ops {a.op!r} (line {a.lineno}) and "
                        f"{b.op!r} (line {b.lineno}) combine overlapping "
                        f"rows of {a.variable!r}; one phase admits one "
                        "combining operator per element (rule R4)",
                        path, a, seg, phase.kind,
                    ))
                elif a.kind != b.kind:
                    diags.append(_diag(
                        "PPM401", "error",
                        f"plain write (line {min(a.lineno, b.lineno)}) and "
                        f"accumulate (line {max(a.lineno, b.lineno)}) from "
                        f"distinct VPs overlap on {a.variable!r}; the "
                        "committed value depends on VP rank order",
                        path, a, seg, phase.kind,
                    ))
                else:
                    benign = (
                        a.value_sym is not None
                        and a.value_sym == b.value_sym
                        and uniform_for(a.value_sym, scope)
                    )
                    if benign:
                        diags.append(_diag(
                            "PPM401", "warning",
                            f"distinct VPs write identical values to "
                            f"overlapping rows of {a.variable!r} "
                            f"({a.expr}); benign, but one guarded writer "
                            "would make the intent explicit",
                            path, a, seg, phase.kind,
                        ))
                    else:
                        where = (
                            f"lines {a.lineno} and {b.lineno}"
                            if a.lineno != b.lineno
                            else f"line {a.lineno}"
                        )
                        diags.append(_diag(
                            "PPM401", "error",
                            f"distinct VPs write overlapping rows of "
                            f"{a.variable!r} in one phase ({a.expr}, "
                            f"{where}); the committed value depends on VP "
                            "rank order",
                            path, a, seg, phase.kind,
                        ))
            else:  # unknown
                if both_acc and a.op != b.op:
                    diags.append(_diag(
                        "PPM403", "warning",
                        f"accumulate ops {a.op!r} and {b.op!r} on "
                        f"{a.variable!r} may combine common rows "
                        f"(lines {a.lineno}, {b.lineno})",
                        path, a, seg, phase.kind,
                    ))
                else:
                    culprit = a if a.iset == SET_TOP else (
                        b if b.iset == SET_TOP else a
                    )
                    other = b if culprit is a else a
                    if culprit.iset == SET_TOP:
                        msg = (
                            f"cannot analyze index expression "
                            f"`{culprit.expr}` (line {culprit.lineno}); "
                            f"writes to {culprit.variable!r} escape the "
                            "affine domain, so phase disjointness is "
                            "unprovable"
                        )
                    else:
                        msg = (
                            f"cannot prove writes to {culprit.variable!r} "
                            f"disjoint across VPs "
                            f"(`{culprit.expr}` line {culprit.lineno} vs "
                            f"`{other.expr}` line {other.lineno})"
                        )
                    diags.append(_diag(
                        "PPM404", "note", msg, path, culprit, seg, phase.kind,
                    ))

    # -- same-VP read-after-write --------------------------------------
    for w in writes:
        if w.kind != "write":
            continue
        for r in reads:
            if (
                r.variable != w.variable
                or _objects_distinct(r, w)
                or r.stmt_id <= w.stmt_id
                or _same_vp_excluded(r, w)
            ):
                continue
            if same_vp_relation(r.iset, w.iset) == "overlap":
                diags.append(_diag(
                    "PPM402", "warning",
                    f"read of {r.variable}{'' } at line {r.lineno} follows "
                    f"a write of the same rows at line {w.lineno} in one "
                    "phase; the read observes the phase-start snapshot "
                    "(rule R1), not the new value",
                    path, r, seg, phase.kind,
                ))
    return diags


def _dependence_edges(phases: list) -> list:
    edges: list[DependenceEdge] = []
    seen = set()
    for i, src in enumerate(phases):
        for dst in phases[i + 1:]:
            for a in src.accesses:
                for b in dst.accesses:
                    if a.variable != b.variable or _objects_distinct(a, b):
                        continue
                    kinds = (a.kind != "read", b.kind != "read")
                    if kinds == (False, False):
                        continue
                    dep = {"RAW": None}
                    if kinds == (True, False):
                        dep = "RAW"
                    elif kinds == (False, True):
                        dep = "WAR"
                    else:
                        dep = "WAW"
                    if (
                        cross_vp_relation(a.iset, b.iset, "global")
                        == "disjoint"
                        and same_vp_relation(a.iset, b.iset) == "disjoint"
                    ):
                        continue
                    key = (a.variable, src.yield_lineno, dst.yield_lineno, dep)
                    if key in seen:
                        continue
                    seen.add(key)
                    edges.append(DependenceEdge(
                        variable=a.variable,
                        src_phase=src.yield_lineno,
                        dst_phase=dst.yield_lineno,
                        kind=dep,
                    ))
    return edges


# ======================================================================
# Module-level entry points
# ======================================================================
def analyze_module(source: str, path: str = "<source>"):
    """Verify every PPM function of one module.

    Returns ``(diagnostics, summaries)``; functions whose shared
    parameters cannot be resolved from the module's ``ppm.do`` sites
    are skipped (the lint layer reports those separately).
    """
    model = build_module_model(source, path)
    module_defs = {
        n.name: n
        for n in ast.walk(model.tree)
        if isinstance(n, ast.FunctionDef)
    }
    diags: list[Diagnostic] = []
    summaries: list[KernelSummary] = []
    for fn in model.functions:
        if not fn.shared_params:
            continue
        d, s = analyze_function(fn, path, resolve_callee=module_defs.get)
        diags.extend(d)
        summaries.append(s)
    diags.sort(key=lambda d: (d.path or "", d.line or 0, d.rule))
    return diags, summaries


def verify_source(source: str, path: str = "<source>"):
    """Lint + dataflow verification of one module's source."""
    from repro.analysis.lint import lint_source

    lint_diags = lint_source(source, path)
    if any(d.rule == "PPM100" for d in lint_diags):
        return lint_diags, []
    flow_diags, summaries = analyze_module(source, path)
    return lint_diags + flow_diags, summaries


def verify_file(path: str):
    with open(path, encoding="utf-8") as fh:
        return verify_source(fh.read(), path=path)


def verify_paths(paths: list[str]):
    from repro.analysis.lint import iter_python_files

    diags: list[Diagnostic] = []
    summaries: list[KernelSummary] = []
    for path in iter_python_files(paths):
        d, s = verify_file(path)
        diags.extend(d)
        summaries.extend(s)
    return diags, summaries
