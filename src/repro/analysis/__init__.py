"""Diagnostics for PPM programs: dynamic sanitizer + static linter.

Two complementary layers over the same :class:`Diagnostic` type:

* :class:`~repro.analysis.sanitizer.PhaseSanitizer` — opt-in runtime
  instrumentation of the phase-commit path.  Enable with
  ``PpmRuntime(cluster, sanitize="warn")`` (collect diagnostics) or
  ``sanitize="strict"`` (raise
  :class:`~repro.core.errors.PhaseConflictError` on the first
  conflicting phase).  It observes the buffered write set of every
  phase and flags write-write overlaps between distinct VPs that the
  deterministic rank-order commit (R3) would silently resolve.

* :mod:`repro.analysis.lint` — a static AST pass over PPM program
  sources flagging model-rule violations before anything runs.  Run it
  programmatically via :func:`lint_paths` or from the command line::

      python -m repro.analysis examples/ src/repro/apps/

See :mod:`repro.analysis.diagnostics` for the rule table.
"""

from repro.analysis.bounds import check_bounds_and_shapes, extent_groups
from repro.analysis.diagnostics import SEVERITIES, Diagnostic
from repro.analysis.lint import (
    build_module_model,
    iter_python_files,
    lint_file,
    lint_paths,
    lint_source,
)
from repro.analysis.liveness import LivenessPlan, analyze_liveness
from repro.analysis.rules import ALL_RULES, RULES_BY_ID
from repro.analysis.sanitizer import PhaseSanitizer

__all__ = [
    "ALL_RULES",
    "Diagnostic",
    "LivenessPlan",
    "PhaseSanitizer",
    "RULES_BY_ID",
    "SEVERITIES",
    "analyze_liveness",
    "build_module_model",
    "check_bounds_and_shapes",
    "extent_groups",
    "iter_python_files",
    "lint_file",
    "lint_paths",
    "lint_source",
]
