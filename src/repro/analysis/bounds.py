"""Interprocedural bounds & shape verification (PPM406–PPM408).

Runs over the access summaries the dataflow interpreter collected and
proves — or fails to prove — that every indexed shared-array access
stays inside the array's declared axis-0 extent, and that the values a
phase writes are shape/dtype-compatible with their downstream readers.

The extent of a shared array enters the domain as the ``("extent",
pk)`` atom of :mod:`repro.analysis.summaries`, with two axioms: an
extent is non-negative, and a node block always lies inside its array
(``extent >= nodehi >= nodelo``).  When the declaration names a
literal size the extent is additionally a known constant.

**Extent groups.**  Kernels routinely index one array with another's
``local_range`` bounds (CG drives ``rs``/``ps``/``qs`` with
``xs.local_range``; Barnes-Hut drives ``VEL``/``ACC`` with ``POSM``'s
block).  That is sound exactly when the arrays share an axis-0 size,
which the lint layer records as the declaration's normalized size
expression (:attr:`repro.analysis.lint.SharedVar.size_expr`).  Shared
parameters with an identical size expression form one *extent group*:
their ``nodelo``/``nodehi``/``extent`` atoms are canonicalized to a
single representative before proving, so cross-array bounds discharge
against the same fence.

Diagnostics:

* **PPM406** (error) — the access is provably out of bounds, with a
  concrete witness rank (rank 0, which always exists);
* **PPM407** (warning) — a bound could not be proven *and* the failing
  expression lies entirely in the chunk algebra (constants, node-block
  bounds, split bounds over chunk-algebra spans, extents, max/min), so
  a proof should have been possible — the expression is named;
* **PPM408** (error) — a phase writes a value whose row width or dtype
  is provably incompatible with a downstream reader of the same shared
  array (checked along the RAW edges of the cross-phase dependence
  graph).

Accesses whose bounds involve opaque program symbols (problem sizes,
driver-computed offsets) are reported neither way: the caller contract
is that declared extents match the driver's problem geometry, and the
verifier cannot see the driver.  Bare ``X[ctx.rank]`` point accesses
are exempt by the same convention — the VP count is chosen by the
driver to fit the array.
"""

from __future__ import annotations

from repro.analysis.diagnostics import Diagnostic
from repro.analysis.lint import FunctionModel
from repro.analysis.summaries import (
    SET_TOP,
    SET_WHOLE,
    AccessSummary,
    fmt_sym,
    is_const,
    iset_bounds,
    le,
    s_add,
    s_const,
    s_extent,
    s_rank,
    s_sub,
    subst,
    _walk_tuples,
)

__all__ = ["check_bounds_and_shapes", "extent_groups"]


def extent_groups(fn: FunctionModel) -> dict[str, str]:
    """Map each non-container shared parameter to its extent-group
    representative (parameters declared with the same normalized size
    expression share one representative)."""
    by_size: dict[str, list[str]] = {}
    for name, sv in sorted(fn.shared_params.items()):
        if sv.container or sv.size_expr is None:
            continue
        by_size.setdefault(sv.size_expr, []).append(name)
    alias: dict[str, str] = {}
    for members in by_size.values():
        rep = members[0]
        for m in members:
            alias[m] = rep
    return alias


def _canon(v, alias: dict[str, str]):
    """Rewrite nodelo/nodehi/extent atoms onto group representatives."""
    mapping = {}
    for t in _walk_tuples(v):
        if (
            isinstance(t, tuple)
            and len(t) == 2
            and t[0] in ("nodelo", "nodehi", "extent")
            and isinstance(t[1], tuple)
            and t[1]
            and t[1][0] in alias
            and alias[t[1][0]] != t[1][0]
        ):
            mapping[t] = (t[0], (alias[t[1][0]],) + tuple(t[1][1:]))
    return subst(v, mapping) if mapping else v


def _chunk_algebra(v) -> bool:
    """Is every atom of ``v`` in the decidable chunk algebra?  Opaque
    symbols and ranks disqualify (their magnitude is a caller
    contract, not a provable fact)."""
    for t in _walk_tuples(v):
        if isinstance(t, tuple) and t and t[0] in (
            "sym", "nodesym", "rank", "top"
        ):
            return False
    return True


def _bounds_diag(rule, severity, message, path, access, seg, kind):
    return Diagnostic(
        tool="dataflow",
        rule=rule,
        severity=severity,
        message=message,
        path=path,
        line=access.lineno,
        phase_index=seg if seg >= 0 else None,
        phase_kind=kind,
        variable=access.variable,
        expr=access.expr,
    )


_RANK_ZERO = {s_rank("global"): s_const(0), s_rank("node"): s_const(0)}


def _check_access(
    access: AccessSummary, sv, alias, seg, kind, path
) -> Diagnostic | None:
    iset = access.iset
    if iset[0] in ("topset", "whole"):
        return None
    # Bare rank-indexed point access: the driver picks the VP count to
    # fit the array — exempt by convention.
    if iset == ("pt", s_rank("global")) or iset == ("pt", s_rank("node")):
        return None
    bounds = iset_bounds(iset)
    if bounds is None:
        return None
    lo, hi = (_canon(b, alias) for b in bounds)
    rep = alias.get(access.variable, access.variable)
    pk = (rep, repr(access.obj_index))
    extent_atom = s_extent(pk)
    extent_const = None if sv is None or sv.container else sv.extent

    lo_ok = le(s_const(0), lo)
    hi_ok = le(hi, extent_atom) or (
        extent_const is not None and le(hi, s_const(extent_const))
    )
    if lo_ok and hi_ok:
        return None

    # Provable violation with a concrete witness: a point access, no
    # guards (so rank 0 executes it), whose index at rank 0 folds to a
    # constant outside the array.
    if iset[0] == "pt" and not access.guards and access.obj_index is None:
        w = subst(_canon(iset[1], alias), _RANK_ZERO)
        oob = None
        if is_const(w):
            if w[1] < 0:
                oob = f"index {w[1]} < 0"
            elif extent_const is not None and w[1] >= extent_const:
                oob = f"index {w[1]} >= extent {extent_const}"
        if oob is not None:
            return _bounds_diag(
                "PPM406", "error",
                f"access `{access.expr}` is provably out of bounds for "
                f"{access.variable!r}: at VP rank 0, {oob}",
                path, access, seg, kind,
            )

    # Unprovable but decidable-in-principle: the failing bound lives
    # entirely in the chunk algebra, so a proof should exist — warn
    # and name the expression.
    failing = []
    if not lo_ok and _chunk_algebra(lo):
        failing.append(f"lower bound {fmt_sym(lo)} >= 0")
    has_fence = extent_const is not None or (
        sv is not None and not sv.container
    )
    if is_const(hi) and extent_const is None:
        # A constant index against a symbolic extent is the caller's
        # contract (the driver sizes the array); nothing to prove.
        has_fence = False
    if not hi_ok and _chunk_algebra(hi) and has_fence:
        fence = (
            str(extent_const)
            if extent_const is not None
            else fmt_sym(extent_atom)
        )
        failing.append(f"upper bound {fmt_sym(hi)} <= {fence}")
    if failing:
        return _bounds_diag(
            "PPM407", "warning",
            f"cannot prove access `{access.expr}` in bounds for "
            f"{access.variable!r}: unprovable " + " and ".join(failing),
            path, access, seg, kind,
        )
    return None


def _check_shapes(fn: FunctionModel, summary, path) -> list[Diagnostic]:
    diags: list[Diagnostic] = []
    raw_vars = {e.variable for e in summary.edges if e.kind == "RAW"}
    writes_by_var: dict[str, list] = {}
    for seg, phase in enumerate(summary.phases):
        for a in phase.accesses:
            if a.kind == "write":
                writes_by_var.setdefault(a.variable, []).append(
                    (seg, phase.kind, a)
                )
    for var in sorted(writes_by_var):
        if var not in raw_vars:
            continue
        sv = fn.shared_params.get(var)
        writes = writes_by_var[var]
        # (a) value width vs the written slice's own length
        for seg, kind, a in writes:
            if a.value_width is None or is_const(a.value_width, 1):
                continue
            if a.iset[0] != "iv":
                continue
            target_len = s_sub(a.iset[2], a.iset[1])
            w = a.value_width
            strict = le(s_add(w, s_const(1)), target_len) or le(
                s_add(target_len, s_const(1)), w
            )
            if strict:
                diags.append(_bounds_diag(
                    "PPM408", "error",
                    f"write `{a.expr}` assigns a value of length "
                    f"{fmt_sym(w)} to {fmt_sym(target_len)} rows of "
                    f"{var!r}; a downstream phase reads the result",
                    path, a, seg, kind,
                ))
        # (b) inconsistent row widths across phases feeding one reader
        widthy = [
            (seg, kind, a)
            for seg, kind, a in writes
            if a.value_width is not None and not is_const(a.value_width, 1)
        ]
        for i in range(len(widthy)):
            for j in range(i + 1, len(widthy)):
                w1, w2 = widthy[i][2].value_width, widthy[j][2].value_width
                if widthy[i][0] == widthy[j][0]:
                    continue
                if le(s_add(w1, s_const(1)), w2) or le(
                    s_add(w2, s_const(1)), w1
                ):
                    seg, kind, a = widthy[j]
                    other = widthy[i][2]
                    diags.append(_bounds_diag(
                        "PPM408", "error",
                        f"phases write rows of provably different "
                        f"lengths to {var!r} ({fmt_sym(w1)} at line "
                        f"{other.lineno} vs {fmt_sym(w2)} at line "
                        f"{a.lineno}); a downstream phase reads the "
                        "result",
                        path, a, seg, kind,
                    ))
        # (c) float value into an int-dtyped array
        if sv is not None and sv.dtype == "int":
            for seg, kind, a in writes:
                if a.value_float:
                    diags.append(_bounds_diag(
                        "PPM408", "error",
                        f"write `{a.expr}` stores a floating-point "
                        f"value into int-dtyped {var!r}; a downstream "
                        "phase reads the truncated result",
                        path, a, seg, kind,
                    ))
    return diags


def check_bounds_and_shapes(
    fn: FunctionModel, summary, path: str
) -> list[Diagnostic]:
    """Bounds-verify (PPM406/PPM407) and shape-check (PPM408) one
    kernel's collected access summaries."""
    diags: list[Diagnostic] = []
    alias = extent_groups(fn)
    for seg, phase in enumerate(summary.phases):
        for access in phase.accesses:
            sv = fn.shared_params.get(access.variable)
            d = _check_access(access, sv, alias, seg, phase.kind, path)
            if d is not None:
                diags.append(d)
    diags.extend(_check_shapes(fn, summary, path))
    return diags
