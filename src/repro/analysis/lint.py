"""Static AST lint pass for PPM programs.

Builds a light semantic model of one Python module — which names are
PPM shared variables (and of which kind), which functions are PPM
functions, how ``ppm.do`` call sites map shared arguments onto PPM
function parameters, and how each PPM function's body segments into a
VP-private prologue followed by phase bodies — then runs every
registered rule (:mod:`repro.analysis.rules`) over that model.

The analysis is deliberately heuristic: it resolves names within one
module only (the idiom of every example and app in this repository,
where driver and kernel live together), and segments phases by source
line — the phase governing a statement is the closest preceding
``yield`` of a phase declaration.  Rules only fire on accesses they can
positively attribute to a shared variable, so unresolved names never
produce noise.

Entry points: :func:`lint_source`, :func:`lint_file`, :func:`lint_paths`.
"""

from __future__ import annotations

import ast
import os
from dataclasses import dataclass, field

from repro.analysis.diagnostics import Diagnostic

#: Method names that declare shared variables, mapped to the kind.
_DECL_METHODS = {"global_shared": "global", "node_shared": "node"}

#: Decorator names that mark a PPM function.
_PPM_DECORATORS = {"ppm_function"}


# ======================================================================
# Model types
# ======================================================================
@dataclass
class SharedVar:
    """A name bound to a shared variable (or a container of them)."""

    name: str
    kind: str  # "global" | "node" | "unknown"
    container: bool = False  # list/tuple of shared handles (e.g. mg's U)
    lineno: int = 0
    extent: int | None = None  # axis-0 length when declared as a literal
    size_expr: str | None = None  # normalized axis-0 size expression
    dtype: str = "float"  # "float" | "int" from the declaration's dtype=


@dataclass
class Access:
    """One shared-variable access inside a PPM function."""

    name: str  # parameter name of the shared variable
    kind: str  # "read" | "write" | "accumulate"
    lineno: int
    stmt_id: int  # source-order index of the enclosing statement
    node: ast.AST
    stmt: ast.stmt  # the enclosing statement
    base_dump: str  # ast.dump of the shared base expression
    index_dump: str | None = None  # ast.dump of the subscript index
    branch: tuple = ()  # enclosing (if-id, arm) pairs, outermost first


@dataclass
class PhaseYield:
    """One ``yield <PhaseDecl>`` in a PPM function."""

    lineno: int
    kind: str | None  # "global" | "node" | None when not statically known


@dataclass
class DoCall:
    """One ``*.do(K, func, ...)`` launch site.

    The callee is resolved through local aliasing (``k = _kernel``)
    and ``functools.partial`` wrapping; ``partial_args`` /
    ``partial_kwargs`` carry the argument expressions a partial bound
    ahead of the context.  ``func_name`` stays ``None`` when the
    callee cannot be resolved statically (``unresolved_reason`` says
    why — rule PPM405 reports it)."""

    node: ast.Call
    k_expr: ast.expr
    func_name: str | None
    lineno: int
    partial_args: list = field(default_factory=list)
    partial_kwargs: dict = field(default_factory=dict)
    unresolved_reason: str | None = None


@dataclass
class FunctionModel:
    """A PPM function with its shared-parameter bindings resolved."""

    node: ast.FunctionDef
    name: str
    ctx_name: str | None
    shared_params: dict[str, SharedVar] = field(default_factory=dict)
    yields: list[PhaseYield] = field(default_factory=list)
    accesses: list[Access] = field(default_factory=list)

    def phase_of(self, lineno: int) -> PhaseYield | None:
        """The phase governing source line ``lineno`` (None =
        VP-private prologue)."""
        governing = None
        for py in self.yields:
            if py.lineno <= lineno:
                governing = py
            else:
                break
        return governing


@dataclass
class ModuleModel:
    """Everything the rules need to know about one module."""

    path: str
    tree: ast.Module
    shared_vars: dict[str, SharedVar] = field(default_factory=dict)
    do_calls: list[DoCall] = field(default_factory=list)
    functions: list[FunctionModel] = field(default_factory=list)
    module_func_names: set = field(default_factory=set)
    """Every function defined anywhere in the module (PPM or not);
    rule PPM405 treats do-callees outside this set as unanalyzed."""


# ======================================================================
# Model construction
# ======================================================================
def _decl_kind(value: ast.expr) -> tuple[str, bool] | None:
    """(kind, container) when ``value`` constructs shared variable(s)."""
    if isinstance(value, ast.Call) and isinstance(value.func, ast.Attribute):
        kind = _DECL_METHODS.get(value.func.attr)
        if kind is not None:
            return kind, False
    if isinstance(value, ast.ListComp):
        inner = _decl_kind(value.elt)
        if inner is not None:
            return inner[0], True
    if isinstance(value, (ast.List, ast.Tuple)) and value.elts:
        kinds = {k for k in (_decl_kind(e) for e in value.elts) if k is not None}
        if len(kinds) == 1 and all(not c for _, c in kinds):
            return next(iter(kinds))[0], True
    return None


def _decl_shape(value: ast.expr) -> tuple[int | None, str | None, str]:
    """(extent, size_expr, dtype) of a shared declaration call.

    ``extent`` is the axis-0 length when it is a literal int;
    ``size_expr`` is the whitespace-normalized source of the axis-0
    size expression (the grouping key for same-size sibling arrays);
    ``dtype`` collapses to ``"int"``/``"float"``."""
    extent: int | None = None
    size_expr: str | None = None
    dtype = "float"
    if not isinstance(value, ast.Call) or len(value.args) < 2:
        return extent, size_expr, dtype
    size = value.args[1]
    if isinstance(size, ast.Tuple) and size.elts:  # (n, width) shapes
        size = size.elts[0]
    if isinstance(size, ast.Constant) and isinstance(size.value, int):
        extent = size.value
    try:
        size_expr = " ".join(ast.unparse(size).split())
    except Exception:  # pragma: no cover
        size_expr = None
    for kw in value.keywords:
        if kw.arg == "dtype":
            try:
                if "int" in ast.unparse(kw.value):
                    dtype = "int"
            except Exception:  # pragma: no cover
                pass
    return extent, size_expr, dtype


def _is_ppm_function(fn: ast.FunctionDef) -> bool:
    for dec in fn.decorator_list:
        target = dec.func if isinstance(dec, ast.Call) else dec
        if isinstance(target, ast.Name) and target.id in _PPM_DECORATORS:
            return True
        if isinstance(target, ast.Attribute) and target.attr in _PPM_DECORATORS:
            return True
    return False


def _is_partial_call(expr: ast.expr) -> bool:
    if not isinstance(expr, ast.Call):
        return False
    func = expr.func
    return (isinstance(func, ast.Name) and func.id == "partial") or (
        isinstance(func, ast.Attribute) and func.attr == "partial"
    )


def _resolve_callee(
    expr: ast.expr, aliases: dict[str, ast.expr], depth: int = 0
) -> tuple[str | None, list, dict, str | None]:
    """Resolve a ``do`` callee expression to its underlying function.

    Follows simple local aliasing (``k = _kernel``) and peels
    ``functools.partial`` wrappers, accumulating the partially-applied
    argument expressions.  Returns ``(func_name, partial_args,
    partial_kwargs, unresolved_reason)`` — ``func_name`` is ``None``
    exactly when ``unresolved_reason`` is set.
    """
    if depth > 8:
        return None, [], {}, "alias chain deeper than 8 links"
    if isinstance(expr, ast.Name):
        if expr.id in aliases:
            target = aliases[expr.id]
            if target is None:  # poisoned: rebound in this module
                return None, [], {}, (
                    f"name {expr.id!r} is rebound in this module"
                )
            return _resolve_callee(target, aliases, depth + 1)
        return expr.id, [], {}, None
    if _is_partial_call(expr):
        if not expr.args:
            return None, [], {}, "functools.partial(...) with no target"
        name, pargs, pkwargs, reason = _resolve_callee(
            expr.args[0], aliases, depth + 1
        )
        pargs = pargs + list(expr.args[1:])
        pkwargs = dict(pkwargs)
        pkwargs.update(
            (kw.arg, kw.value) for kw in expr.keywords if kw.arg is not None
        )
        return name, pargs, pkwargs, reason
    if isinstance(expr, ast.Lambda):
        return None, [], {}, "lambda callee (name the kernel instead)"
    try:
        shown = ast.unparse(expr)
    except Exception:  # pragma: no cover
        shown = "<expression>"
    return None, [], {}, f"dynamic callee expression `{shown}`"


def _yield_kind(value: ast.expr | None) -> str | None:
    """Phase kind of a ``yield`` value, when statically known."""
    if isinstance(value, ast.Attribute):
        if value.attr == "global_phase":
            return "global"
        if value.attr == "node_phase":
            return "node"
    if (
        isinstance(value, ast.Call)
        and isinstance(value.func, ast.Attribute)
        and value.func.attr == "phase"
        and value.args
        and isinstance(value.args[0], ast.Constant)
        and isinstance(value.args[0].value, str)
    ):
        return value.args[0].value
    return None


def _iter_statements(body: list[ast.stmt], branch: tuple = ()):
    """All ``(stmt, branch)`` pairs in source order, recursing into
    compound bodies (but not into nested function definitions).

    ``branch`` records the chain of enclosing ``if`` arms as
    ``(id(if_node), arm_index)`` pairs; rules use it to tell apart
    accesses in mutually exclusive branches (same ``if``, different
    arm) from accesses on one control path."""
    for stmt in body:
        yield stmt, branch
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        if isinstance(stmt, ast.If):
            yield from _iter_statements(stmt.body, branch + ((id(stmt), 0),))
            yield from _iter_statements(stmt.orelse, branch + ((id(stmt), 1),))
            continue
        for attr in ("body", "orelse", "finalbody"):
            inner = getattr(stmt, attr, None)
            if inner:
                yield from _iter_statements(inner, branch)
        for handler in getattr(stmt, "handlers", []) or []:
            yield from _iter_statements(handler.body, branch)


def _shared_base(expr: ast.expr, shared: dict[str, SharedVar]) -> tuple[str, ast.expr] | None:
    """Resolve ``expr`` to (shared name, base expr) when it denotes a
    shared handle: ``X`` for plain shared names, ``C[i]`` for
    containers of shared handles."""
    if isinstance(expr, ast.Name):
        var = shared.get(expr.id)
        if var is not None and not var.container:
            return expr.id, expr
    if isinstance(expr, ast.Subscript) and isinstance(expr.value, ast.Name):
        var = shared.get(expr.value.id)
        if var is not None and var.container:
            return expr.value.id, expr
    return None


def _own_expr_roots(stmt: ast.stmt):
    """The expression subtrees that belong to ``stmt`` itself — i.e.
    excluding nested statement bodies, which get their own stmt_id."""
    for name, value in ast.iter_fields(stmt):
        if name in ("body", "orelse", "finalbody", "handlers", "decorator_list"):
            continue
        values = value if isinstance(value, list) else [value]
        for v in values:
            if isinstance(v, ast.expr):
                yield v
            elif isinstance(v, ast.withitem):
                yield v.context_expr
                if v.optional_vars is not None:
                    yield v.optional_vars


def _collect_accesses(fn: FunctionModel) -> None:
    """Populate ``fn.accesses`` with every positively-attributed shared
    access, tagged with its enclosing statement's source-order index."""
    shared = fn.shared_params
    for stmt_id, (stmt, branch) in enumerate(_iter_statements(fn.node.body)):
        for node in (n for root in _own_expr_roots(stmt) for n in ast.walk(root)):
            if isinstance(node, ast.Subscript):
                resolved = _shared_base(node.value, shared)
                if resolved is None:
                    continue
                name, base = resolved
                kind = "write" if isinstance(node.ctx, (ast.Store, ast.Del)) else "read"
                if isinstance(node.ctx, ast.Store) and isinstance(stmt, ast.AugAssign):
                    kind = "write"
                fn.accesses.append(
                    Access(
                        name=name,
                        kind=kind,
                        lineno=node.lineno,
                        stmt_id=stmt_id,
                        node=node,
                        stmt=stmt,
                        base_dump=ast.dump(base),
                        index_dump=ast.dump(node.slice),
                        branch=branch,
                    )
                )
            elif (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "accumulate"
            ):
                resolved = _shared_base(node.func.value, shared)
                if resolved is None:
                    continue
                name, base = resolved
                fn.accesses.append(
                    Access(
                        name=name,
                        kind="accumulate",
                        lineno=node.lineno,
                        stmt_id=stmt_id,
                        node=node,
                        stmt=stmt,
                        base_dump=ast.dump(base),
                        branch=branch,
                    )
                )
    fn.accesses.sort(key=lambda a: (a.stmt_id, a.lineno))


def build_module_model(source: str, path: str = "<source>") -> ModuleModel:
    """Parse ``source`` and build the semantic model the rules consume."""
    tree = ast.parse(source, filename=path)
    model = ModuleModel(path=path, tree=tree)

    # Pass 1: shared declarations, callee aliases and do-launch sites,
    # module-wide.  Alias entries record simple single-target
    # assignments whose value could denote a kernel (a bare name or a
    # functools.partial call) so do-callees resolve through them.
    aliases: dict[str, ast.expr] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Assign) and len(node.targets) == 1:
            target = node.targets[0]
            if isinstance(target, ast.Name):
                decl = _decl_kind(node.value)
                if decl is not None:
                    kind, container = decl
                    extent, size_expr, dtype = _decl_shape(node.value)
                    model.shared_vars[target.id] = SharedVar(
                        target.id, kind, container, node.lineno,
                        extent=extent, size_expr=size_expr, dtype=dtype,
                    )
                elif isinstance(node.value, ast.Name) or _is_partial_call(
                    node.value
                ):
                    if target.id in aliases:
                        # Rebinding makes the alias ambiguous; poison it
                        # (the callee then reports as unresolved).
                        aliases[target.id] = None
                    else:
                        aliases[target.id] = node.value
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "do"
            and len(node.args) >= 2
        ):
            model.do_calls.append(
                DoCall(node=node, k_expr=node.args[0], func_name=None,
                       lineno=node.lineno)
            )
    for call in model.do_calls:
        name, pargs, pkwargs, reason = _resolve_callee(
            call.node.args[1], aliases
        )
        call.func_name = name
        call.partial_args = pargs
        call.partial_kwargs = pkwargs
        call.unresolved_reason = reason

    # Pass 2: PPM functions with phase segmentation.
    functions_by_name: dict[str, FunctionModel] = {}
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            model.module_func_names.add(node.name)
        if isinstance(node, ast.FunctionDef) and _is_ppm_function(node):
            params = [a.arg for a in node.args.args]
            fn = FunctionModel(
                node=node,
                name=node.name,
                ctx_name=params[0] if params else None,
            )
            for sub in ast.walk(node):
                if isinstance(sub, ast.Yield):
                    fn.yields.append(PhaseYield(sub.lineno, _yield_kind(sub.value)))
            fn.yields.sort(key=lambda y: y.lineno)
            functions_by_name[node.name] = fn
            model.functions.append(fn)

    # Pass 3: map shared arguments of do-launches onto callee params.
    # With ``functools.partial(f, p1..pk)``, the callee is invoked as
    # ``f(p1..pk, ctx, *do_args)`` — the partial's args bind the
    # leading params, the context sits at index k, and the do-site
    # args bind the rest.
    for call in model.do_calls:
        fn = functions_by_name.get(call.func_name or "")
        if fn is None:
            continue
        params_all = [a.arg for a in fn.node.args.args]
        off = len(call.partial_args)
        if off >= len(params_all):
            continue
        if off:
            fn.ctx_name = params_all[off]
        params = params_all[off + 1:]  # skip ctx
        bound: list[tuple[str, ast.expr]] = list(
            zip(params_all[:off], call.partial_args)
        )
        bound += list(zip(params, call.node.args[2:]))
        bound += [
            (kw.arg, kw.value) for kw in call.node.keywords if kw.arg in params
        ]
        bound += [
            (name, value)
            for name, value in call.partial_kwargs.items()
            if name in params_all
        ]
        for param, arg in bound:
            if isinstance(arg, ast.Name) and arg.id in model.shared_vars:
                var = model.shared_vars[arg.id]
                known = fn.shared_params.get(param)
                if known is not None and known.kind != var.kind:
                    var = SharedVar(var.name, "unknown", var.container, var.lineno)
                fn.shared_params[param] = SharedVar(
                    param, var.kind, var.container, var.lineno,
                    extent=var.extent, size_expr=var.size_expr,
                    dtype=var.dtype,
                )

    # Pass 4: accesses (needs the shared-parameter bindings).
    for fn in model.functions:
        if fn.shared_params:
            _collect_accesses(fn)
    return model


# ======================================================================
# Entry points
# ======================================================================
def lint_source(
    source: str, path: str = "<source>", rules=None
) -> list[Diagnostic]:
    """Lint one module's source; returns the findings in source order."""
    from repro.analysis.rules import ALL_RULES

    try:
        model = build_module_model(source, path)
    except SyntaxError as exc:
        return [
            Diagnostic(
                tool="lint",
                rule="PPM100",
                severity="error",
                message=f"could not parse module: {exc.msg}",
                path=path,
                line=exc.lineno or 0,
            )
        ]
    found: list[Diagnostic] = []
    for rule in rules if rules is not None else ALL_RULES:
        found.extend(rule.check(model))
    found.sort(key=lambda d: (d.path or "", d.line or 0, d.rule))
    return found


def lint_file(path: str, rules=None) -> list[Diagnostic]:
    """Lint one Python file."""
    with open(path, encoding="utf-8") as fh:
        return lint_source(fh.read(), path=path, rules=rules)


def iter_python_files(paths: list[str]):
    """Expand files/directories into a sorted list of ``.py`` files."""
    out: list[str] = []
    for path in paths:
        if os.path.isdir(path):
            for root, _dirs, files in os.walk(path):
                out.extend(
                    os.path.join(root, f) for f in files if f.endswith(".py")
                )
        elif path.endswith(".py"):
            out.append(path)
        else:
            raise FileNotFoundError(f"not a Python file or directory: {path}")
    return sorted(out)


def lint_paths(paths: list[str], rules=None) -> list[Diagnostic]:
    """Lint every ``.py`` file under the given files/directories."""
    found: list[Diagnostic] = []
    for path in iter_python_files(paths):
        found.extend(lint_file(path, rules=rules))
    return found
