"""Command-line entry point for the static PPM linter.

Usage::

    python -m repro.analysis [--strict] [--json] [--list-rules] PATH...

Exit status: 0 when no error-severity finding was produced (warnings
alone do not fail the run unless ``--strict``), 1 when findings fail
the run, 2 on usage errors such as a missing path.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.analysis.lint import lint_paths
from repro.analysis.rules import ALL_RULES


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="Static lint pass for PPM programs (rules PPM101-PPM105).",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        metavar="PATH",
        help="Python files or directories to lint (directories recurse).",
    )
    parser.add_argument(
        "--strict",
        action="store_true",
        help="treat warnings as failures (nonzero exit on any finding)",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        dest="as_json",
        help="emit findings as a JSON array instead of text lines",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the registered rules and exit",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = _build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in ALL_RULES:
            print(f"{rule.rule_id}  [{rule.severity:7s}]  {rule.summary}")
        return 0

    if not args.paths:
        parser.print_usage(sys.stderr)
        print("error: no paths given (or use --list-rules)", file=sys.stderr)
        return 2

    try:
        findings = lint_paths(args.paths)
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    if args.as_json:
        print(json.dumps([d.to_dict() for d in findings], indent=2))
    else:
        for diag in findings:
            print(diag.format())

    n_err = sum(1 for d in findings if d.severity == "error")
    n_warn = sum(1 for d in findings if d.severity == "warning")
    if not args.as_json:
        if findings:
            print(f"{n_err} error(s), {n_warn} warning(s)")
        else:
            print("clean: no findings")

    failed = n_err > 0 or (args.strict and n_warn > 0)
    return 1 if failed else 0


if __name__ == "__main__":
    raise SystemExit(main())
