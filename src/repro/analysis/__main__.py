"""Command-line entry point for the static PPM analyzers.

Usage::

    python -m repro.analysis [--strict] [--json] [--list-rules] PATH...
    python -m repro.analysis verify [--strict] [--json | --sarif FILE]
                                    [--baseline FILE]
                                    [--write-baseline FILE] PATH...
    python -m repro.analysis --explain PPM401
    python -m repro.analysis --list-codes

The bare form runs the AST lint pass (rules PPM1xx).  ``verify`` runs
lint *plus* the symbolic dataflow verifier (rules PPM4xx,
docs/ANALYSIS.md) and prints a per-kernel certificate summary;
``--sarif`` writes a SARIF 2.1.0 log (mutually exclusive with
``--json``), ``--baseline`` suppresses previously accepted findings
and ``--write-baseline`` records the current findings as that file.
``--explain`` prints the rule's docs/DIAGNOSTICS.md section;
``--list-codes`` prints every registered PPM code with its one-line
summary.

Exit status: 0 when no error-severity finding was produced (warnings
alone do not fail the run unless ``--strict``), 1 when findings fail
the run, 2 on usage errors such as a missing path or unknown rule id.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.analysis.diagnostics import ALL_CODES
from repro.analysis.lint import lint_paths
from repro.analysis.rules import ALL_RULES


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description=(
            "Static analysis for PPM programs: lint (PPM1xx) and, via the "
            "'verify' subcommand, symbolic phase-dataflow verification "
            "(PPM4xx) with conflict-freedom certificates."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        metavar="PATH",
        help="Python files or directories to analyze (directories recurse).",
    )
    parser.add_argument(
        "--strict",
        action="store_true",
        help="treat warnings as failures (nonzero exit on any finding)",
    )
    output = parser.add_mutually_exclusive_group()
    output.add_argument(
        "--json",
        action="store_true",
        dest="as_json",
        help="emit findings as a JSON object instead of text lines",
    )
    output.add_argument(
        "--sarif",
        metavar="FILE",
        help=(
            "(verify) write findings as a SARIF 2.1.0 log "
            "(not combinable with --json)"
        ),
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the registered rules and exit",
    )
    parser.add_argument(
        "--list-codes",
        action="store_true",
        dest="list_codes",
        help="print every registered PPM code with its summary and exit",
    )
    parser.add_argument(
        "--explain",
        metavar="PPMxxx",
        help="print the rule's docs/DIAGNOSTICS.md section and exit",
    )
    parser.add_argument(
        "--baseline",
        metavar="FILE",
        help="(verify) suppress findings recorded in this baseline file",
    )
    parser.add_argument(
        "--write-baseline",
        metavar="FILE",
        dest="write_baseline",
        help="(verify) record the current findings as a baseline file",
    )
    return parser


# ----------------------------------------------------------------------
# --explain
# ----------------------------------------------------------------------
def _diagnostics_doc() -> Path | None:
    candidate = Path(__file__).resolve().parents[3] / "docs" / "DIAGNOSTICS.md"
    return candidate if candidate.is_file() else None


def explain_rule(code: str) -> str | None:
    """The docs/DIAGNOSTICS.md section of ``code`` (falls back to the
    registry one-liner when the docs tree is unavailable)."""
    code = code.upper()
    if code not in ALL_CODES:
        return None
    doc = _diagnostics_doc()
    if doc is not None:
        lines = doc.read_text(encoding="utf-8").splitlines()
        try:
            start = lines.index(f"### {code}")
        except ValueError:
            start = None
        if start is not None:
            body = [lines[start]]
            for line in lines[start + 1:]:
                if line.startswith(("### ", "## ", "---")):
                    break
                body.append(line)
            return "\n".join(body).rstrip() + "\n"
    return f"### {code}\n\n{ALL_CODES[code]}\n"


# ----------------------------------------------------------------------
# verify
# ----------------------------------------------------------------------
def _run_verify(args, parser) -> int:
    from repro.analysis.dataflow import verify_paths
    from repro.analysis.sarif import (
        apply_baseline,
        load_baseline,
        write_baseline,
        write_sarif,
    )

    if not args.paths:
        parser.print_usage(sys.stderr)
        print("error: no paths given", file=sys.stderr)
        return 2
    try:
        findings, summaries = verify_paths(args.paths)
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    baseline = load_baseline(args.baseline) if args.baseline else set()
    active, suppressed = apply_baseline(findings, baseline)

    if args.write_baseline:
        write_baseline(findings, args.write_baseline)
    if args.sarif:
        write_sarif(
            findings,
            args.sarif,
            suppressed={f for f in baseline},
        )

    if args.as_json:
        print(
            json.dumps(
                {
                    "findings": [d.to_dict() for d in active],
                    "suppressed": [d.to_dict() for d in suppressed],
                    "kernels": [
                        {
                            "name": s.name,
                            "path": s.path,
                            "analyzable": s.analyzable,
                            "certified": s.certified,
                            "reason": s.reason,
                            "phases": [
                                {
                                    "yield_line": p.yield_lineno,
                                    "kind": p.kind,
                                    "certified": p.certified,
                                    "accesses": len(p.accesses),
                                }
                                for p in s.phases
                            ],
                            "dependence_edges": [
                                {
                                    "variable": e.variable,
                                    "src_phase_line": e.src_phase,
                                    "dst_phase_line": e.dst_phase,
                                    "kind": e.kind,
                                }
                                for e in s.edges
                            ],
                        }
                        for s in summaries
                    ],
                },
                indent=2,
            )
        )
    else:
        for diag in active:
            print(diag.format())
        for s in summaries:
            if s.certified:
                status = "certified conflict-free"
            elif not s.analyzable:
                status = f"not analyzable ({s.reason})"
            else:
                good = sum(1 for p in s.phases if p.certified)
                status = f"{good}/{len(s.phases)} phases certified"
            print(f"{s.path}: {s.name}: {status}")
        if suppressed:
            print(f"{len(suppressed)} finding(s) suppressed by baseline")

    n_err = sum(1 for d in active if d.severity == "error")
    n_warn = sum(1 for d in active if d.severity == "warning")
    if not args.as_json:
        if active:
            print(f"{n_err} error(s), {n_warn} warning(s)")
        else:
            print("clean: no findings")
    failed = n_err > 0 or (args.strict and n_warn > 0)
    return 1 if failed else 0


def main(argv: list[str] | None = None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    verify = bool(argv) and argv[0] == "verify"
    if verify:
        argv = argv[1:]
    parser = _build_parser()
    args = parser.parse_args(argv)

    if args.explain:
        text = explain_rule(args.explain)
        if text is None:
            print(
                f"error: unknown rule id {args.explain!r} "
                f"(known: {', '.join(sorted(ALL_CODES))})",
                file=sys.stderr,
            )
            return 2
        print(text, end="")
        return 0

    if args.list_codes:
        for code in sorted(ALL_CODES):
            print(f"{code}  {ALL_CODES[code]}")
        return 0

    if args.list_rules:
        for rule in ALL_RULES:
            print(f"{rule.rule_id}  [{rule.severity:7s}]  {rule.summary}")
        if verify:
            for code in sorted(c for c in ALL_CODES if c.startswith("PPM4")):
                print(f"{code}  [dataflow]  {ALL_CODES[code]}")
        return 0

    if verify:
        return _run_verify(args, parser)

    if not args.paths:
        parser.print_usage(sys.stderr)
        print("error: no paths given (or use --list-rules)", file=sys.stderr)
        return 2

    try:
        findings = lint_paths(args.paths)
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    if args.as_json:
        print(json.dumps([d.to_dict() for d in findings], indent=2))
    else:
        for diag in findings:
            print(diag.format())

    n_err = sum(1 for d in findings if d.severity == "error")
    n_warn = sum(1 for d in findings if d.severity == "warning")
    if not args.as_json:
        if findings:
            print(f"{n_err} error(s), {n_warn} warning(s)")
        else:
            print("clean: no findings")

    failed = n_err > 0 or (args.strict and n_warn > 0)
    return 1 if failed else 0


if __name__ == "__main__":
    raise SystemExit(main())
