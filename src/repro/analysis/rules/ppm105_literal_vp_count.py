"""PPM105 — ``ppm.do`` launch with a hard-coded VP count (warn-only).

The PPM programming model sizes a computation by choosing K, the number
of virtual processors, from the *cluster geometry* (nodes × cores, or a
multiple thereof) so the same program runs unchanged on any machine.
A VP count written as an inline integer literal bakes one machine's
shape into the program; moving to a different cluster silently under-
or over-subscribes it.

Only inline literals are flagged.  A named module-level constant
(``K = 16`` then ``ppm.do(K, ...)``) expresses a deliberate choice and
is left alone — the paper's own listings use that form.

Reference (triggering example and fix): docs/DIAGNOSTICS.md#ppm105
"""

from __future__ import annotations

import ast

from repro.analysis.rules.base import LintRule


def _literal_int_expr(expr: ast.expr) -> bool:
    if isinstance(expr, ast.Constant) and isinstance(expr.value, int):
        return True
    if isinstance(expr, (ast.List, ast.Tuple)) and expr.elts:
        return all(_literal_int_expr(e) for e in expr.elts)
    return False


class LiteralVpCountRule(LintRule):
    rule_id = "PPM105"
    severity = "warning"
    summary = "ppm.do launch with an inline literal VP count"

    def check(self, model):
        for call in model.do_calls:
            if _literal_int_expr(call.k_expr):
                shown = ast.unparse(call.k_expr)
                yield self.diag(
                    model,
                    call.lineno,
                    f"VP count {shown} is an inline literal; derive K from "
                    "the cluster geometry (e.g. cluster.total_cores() or a "
                    "multiple of it) so the program stays "
                    "machine-independent",
                )


RULE = LiteralVpCountRule()
