"""PPM103 — plain-write reduction pattern that should be ``accumulate``.

``X[i] += v`` (or the spelled-out ``X[i] = X[i] + v``) on a shared
variable reads the *phase-start snapshot* (R1) and plain-writes the sum
back: if any other VP updates the same element in the same phase, all
but the highest-ranked VP's contribution silently vanishes under R3.
The combining form ``X.accumulate(i, v)`` merges every contribution
(R4) and is what a reduction means in this model.  Even when elements
never actually overlap, the accumulate form states the intent and stays
correct under re-chunking.

Reference (triggering example and fix): docs/DIAGNOSTICS.md#ppm103
"""

from __future__ import annotations

import ast

from repro.analysis.rules.base import LintRule

#: Operators with an ``accumulate`` equivalent (``+``/``-`` map to
#: add/subtract, ``*`` to multiply).
_COMBINABLE_OPS = (ast.Add, ast.Sub, ast.Mult)


def _self_update(acc, rhs: ast.expr) -> bool:
    """True when ``rhs`` contains ``base[index]`` with the same base
    and index as the write target ``acc``."""
    for node in ast.walk(rhs):
        if (
            isinstance(node, ast.Subscript)
            and isinstance(node.ctx, ast.Load)
            and ast.dump(node.value) == acc.base_dump
            and ast.dump(node.slice) == acc.index_dump
        ):
            return True
    return False


class PlainWriteReductionRule(LintRule):
    rule_id = "PPM103"
    severity = "error"
    summary = "plain-write reduction should be accumulate"

    def check(self, model):
        for fn in model.functions:
            for acc in fn.accesses:
                if acc.kind != "write":
                    continue
                stmt = acc.stmt
                hit = False
                if (
                    isinstance(stmt, ast.AugAssign)
                    and stmt.target is acc.node
                    and isinstance(stmt.op, _COMBINABLE_OPS)
                ):
                    hit = True
                elif (
                    isinstance(stmt, ast.Assign)
                    and len(stmt.targets) == 1
                    and stmt.targets[0] is acc.node
                    and isinstance(stmt.value, ast.BinOp)
                    and isinstance(stmt.value.op, _COMBINABLE_OPS)
                    and _self_update(acc, stmt.value)
                ):
                    hit = True
                if hit:
                    yield self.diag(
                        model,
                        acc.lineno,
                        f"read-modify-write on shared variable {acc.name!r} "
                        "plain-writes a value derived from the phase-start "
                        "snapshot: concurrent updates by other VPs are "
                        "silently lost under rank-order resolution (R3); "
                        f"use {acc.name}.accumulate(...) (R4) instead",
                    )


RULE = PlainWriteReductionRule()
