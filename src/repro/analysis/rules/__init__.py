"""Registry of static lint rules.

Each rule module exposes a singleton ``RULE``; this package collects
them in ``ALL_RULES`` (the default rule set run by
:func:`repro.analysis.lint.lint_source`) and ``RULES_BY_ID`` for
lookup/filtering.
"""

from __future__ import annotations

from repro.analysis.rules.base import LintRule
from repro.analysis.rules.ppm101_prologue_access import RULE as PPM101
from repro.analysis.rules.ppm102_node_phase_global_write import RULE as PPM102
from repro.analysis.rules.ppm103_plain_write_reduction import RULE as PPM103
from repro.analysis.rules.ppm104_stale_read_after_write import RULE as PPM104
from repro.analysis.rules.ppm105_literal_vp_count import RULE as PPM105
from repro.analysis.rules.ppm405_unanalyzed_callee import RULE as PPM405

ALL_RULES: list[LintRule] = [PPM101, PPM102, PPM103, PPM104, PPM105, PPM405]

RULES_BY_ID: dict[str, LintRule] = {rule.rule_id: rule for rule in ALL_RULES}

__all__ = ["ALL_RULES", "RULES_BY_ID", "LintRule"]
