"""PPM102 — global-shared write inside a node phase.

Rule R5 (docs/SEMANTICS.md): ``GlobalShared`` may be read anywhere but
written only in *global* phases — node phases commit per node with no
cluster agreement, so a global write there would race across nodes.
The runtime raises ``SharedAccessError`` at execution time; this rule
reports the same violation statically, for phases whose kind is
statically known.

Reference (triggering example and fix): docs/DIAGNOSTICS.md#ppm102
"""

from __future__ import annotations

from repro.analysis.rules.base import LintRule


class NodePhaseGlobalWriteRule(LintRule):
    rule_id = "PPM102"
    severity = "error"
    summary = "global-shared write inside a node phase"

    def check(self, model):
        for fn in model.functions:
            for acc in fn.accesses:
                if acc.kind not in ("write", "accumulate"):
                    continue
                var = fn.shared_params.get(acc.name)
                if var is None or var.kind != "global":
                    continue
                phase = fn.phase_of(acc.lineno)
                if phase is not None and phase.kind == "node":
                    verb = "accumulated" if acc.kind == "accumulate" else "written"
                    yield self.diag(
                        model,
                        acc.lineno,
                        f"global-shared variable {acc.name!r} is {verb} "
                        f"inside a node phase of {fn.name!r}; global-shared "
                        "writes are only legal in global phases (R5) and "
                        "raise SharedAccessError at run time",
                    )


RULE = NodePhaseGlobalWriteRule()
