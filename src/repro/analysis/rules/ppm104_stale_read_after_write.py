"""PPM104 — read after write of the same shared variable in one phase.

Rule R1 (snapshot reads): inside a phase, *every* read returns the
value the variable had when the phase opened — including reads of
elements the same VP wrote moments earlier.  Code that writes a shared
variable and then reads it later in the same phase almost always
expects the new value and silently gets the stale snapshot; the fix is
to keep the written value in a local, or to split the phase so the
write commits first.

Two guards keep the rule quiet on correct code:

* reads in the *same statement* as the write (e.g. the RHS feeding the
  write target) are not flagged — evaluation order puts them before
  the write;
* the write must lie on the read's control path: a write whose branch
  chain is not a prefix of the read's (e.g. the two sit in different
  arms of an ``if op == ...`` dispatch) may never execute together
  with the read, so it is ignored.

Reference (triggering example and fix): docs/DIAGNOSTICS.md#ppm104
"""

from __future__ import annotations

from repro.analysis.rules.base import LintRule


def _on_path(write_branch: tuple, read_branch: tuple) -> bool:
    """True when the write's branch chain is a prefix of the read's,
    i.e. whenever the read executes the write has executed too."""
    return write_branch == read_branch[: len(write_branch)]


class StaleReadAfterWriteRule(LintRule):
    rule_id = "PPM104"
    severity = "error"
    summary = "read after write in the same phase sees the old snapshot"

    def check(self, model):
        for fn in model.functions:
            # Write statements per (phase, variable).
            writes: dict[tuple[int, str], list] = {}
            for acc in fn.accesses:
                if acc.kind not in ("write", "accumulate"):
                    continue
                phase = fn.phase_of(acc.lineno)
                if phase is None:
                    continue
                writes.setdefault((phase.lineno, acc.name), []).append(acc)
            if not writes:
                continue
            for acc in fn.accesses:
                if acc.kind != "read":
                    continue
                phase = fn.phase_of(acc.lineno)
                if phase is None:
                    continue
                stale = any(
                    w.stmt_id < acc.stmt_id and _on_path(w.branch, acc.branch)
                    for w in writes.get((phase.lineno, acc.name), ())
                )
                if stale:
                    yield self.diag(
                        model,
                        acc.lineno,
                        f"shared variable {acc.name!r} is read after being "
                        "written earlier in the same phase; the read returns "
                        "the phase-start snapshot (R1), not the value just "
                        "written — keep the new value in a local, or commit "
                        "it by splitting the phase",
                    )


RULE = StaleReadAfterWriteRule()
