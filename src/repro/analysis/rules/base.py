"""Common machinery for lint rules.

A rule is an object with a stable ``rule_id``, a default ``severity``
and a ``check(model)`` method yielding
:class:`~repro.analysis.diagnostics.Diagnostic` findings for one
:class:`~repro.analysis.lint.ModuleModel`.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable

from repro.analysis.diagnostics import Diagnostic

if TYPE_CHECKING:  # pragma: no cover
    from repro.analysis.lint import ModuleModel


class LintRule:
    """Base class: subclasses set the class attributes and implement
    :meth:`check`."""

    rule_id: str = "PPM000"
    severity: str = "error"
    summary: str = ""

    def check(self, model: "ModuleModel") -> Iterable[Diagnostic]:  # pragma: no cover
        raise NotImplementedError

    def diag(self, model: "ModuleModel", lineno: int, message: str) -> Diagnostic:
        return Diagnostic(
            tool="lint",
            rule=self.rule_id,
            severity=self.severity,
            message=message,
            path=model.path,
            line=lineno,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<LintRule {self.rule_id}: {self.summary}>"
