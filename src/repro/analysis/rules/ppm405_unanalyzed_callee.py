"""PPM405 — ``ppm.do`` callee the analyzers cannot see (warn-only).

The lint and dataflow passes resolve each ``do(K, func, ...)`` site
to a module-level kernel — following local aliases (``k = _kernel``)
and ``functools.partial`` wrappers — and then analyze that kernel's
phase structure and shared accesses.  A callee they cannot resolve
(a lambda, a dynamically computed expression, a rebound name, or a
function imported from elsewhere) is a kernel that silently escapes
every static check: no PPM1xx findings, no PPM4xx conflict proofs,
no overlap certificate.  PPM405 makes that gap visible instead of
letting it pass as "clean".

Reference (triggering example and fix): docs/DIAGNOSTICS.md#ppm405
"""

from __future__ import annotations

from repro.analysis.rules.base import LintRule


class UnanalyzedCalleeRule(LintRule):
    rule_id = "PPM405"
    severity = "warning"
    summary = "ppm.do callee cannot be analyzed statically"

    def check(self, model):
        for call in model.do_calls:
            if call.func_name is None:
                yield self.diag(
                    model,
                    call.lineno,
                    f"do() callee cannot be resolved statically "
                    f"({call.unresolved_reason}); this kernel escapes "
                    "all static analysis — define it as a named "
                    "module-level function (functools.partial over one "
                    "is fine)",
                )
            elif call.func_name not in model.module_func_names:
                yield self.diag(
                    model,
                    call.lineno,
                    f"do() callee {call.func_name!r} is not defined in "
                    "this module (imported or missing); its phase "
                    "structure and shared accesses are not analyzed "
                    "here",
                )


RULE = UnanalyzedCalleeRule()
