"""PPM101 — shared-variable access in the VP-private prologue.

Code before a PPM function's first ``yield`` runs once per VP with no
phase open; the runtime rejects shared accesses there at execution time
(``SharedAccessError``).  This rule catches the mistake statically:
any subscript read/write or ``accumulate`` on a shared parameter that
lies before the first phase declaration.  Metadata calls
(``X.local_range(...)``, ``X.shape``) are not accesses and are legal.

Reference (triggering example and fix): docs/DIAGNOSTICS.md#ppm101
"""

from __future__ import annotations

from repro.analysis.rules.base import LintRule


class PrologueAccessRule(LintRule):
    rule_id = "PPM101"
    severity = "error"
    summary = "shared access in the VP-private prologue"

    def check(self, model):
        for fn in model.functions:
            for acc in fn.accesses:
                if fn.phase_of(acc.lineno) is None:
                    yield self.diag(
                        model,
                        acc.lineno,
                        f"shared variable {acc.name!r} is accessed in the "
                        f"VP-private prologue of {fn.name!r} (before the "
                        "first phase declaration); shared access is only "
                        "legal inside a phase body and raises "
                        "SharedAccessError at run time",
                    )


RULE = PrologueAccessRule()
