"""Structured findings shared by both analysis layers.

The dynamic sanitizer and the static linter report through one
:class:`Diagnostic` type so drivers, tests and the CLI can treat
findings uniformly.  Every finding carries a stable rule id:

=========  ============================================================
Rule id    Meaning
=========  ============================================================
PPM101     shared-variable access in the VP-private prologue (lint)
PPM102     global-shared write inside a node phase (lint)
PPM103     plain-write read-modify-write that should be ``accumulate``
PPM104     read after write of the same shared variable in one phase
           (the read observes the phase-start snapshot, rule R1)
PPM105     ``ppm.do`` VP count is a hard-coded literal, not derived
           from problem size or cluster geometry (lint, warn-only)
PPM201     rank-order-dependent conflict: distinct VPs wrote different
           values (or mixed accumulate ops) to one element (sanitizer)
PPM202     mixed plain write + accumulate on one element from distinct
           VPs (sanitizer)
PPM203     benign overlap: distinct VPs plain-wrote identical values
           to one element (sanitizer, warning)
PPM301     malformed fault probability/delay (resilience config)
PPM302     invalid fault target node/phase (resilience config)
PPM303     invalid checkpoint/recovery policy (resilience config)
PPM304     invalid retry policy (resilience config)
PPM305     invalid straggler factor (resilience config)
PPM401     provable write-write overlap between distinct VPs in one
           phase (dataflow verifier)
PPM402     same-VP read of rows written earlier in the phase; the read
           observes the phase-start snapshot (dataflow verifier)
PPM403     accumulate-operator mismatch on overlapping index sets
           (dataflow verifier)
PPM404     unanalyzable access — the index expression escapes the
           affine domain, so disjointness is unprovable (dataflow)
PPM406     provable out-of-bounds shared-array access, with a concrete
           witness rank (bounds verifier)
PPM407     shared-array access bound unprovable against the declared
           extent (bounds verifier, warning)
PPM408     phase writes a shape/dtype incompatible with a downstream
           reader on the cross-phase dependence graph
PPM409     dead write: value provably overwritten before any snapshot
           read (liveness, warning)
PPM410     liveness unanalyzable; snapshot-pruning plan degrades to
           copy-everything (liveness, warning)
=========  ============================================================

Each rule id anchors a section of docs/DIAGNOSTICS.md (e.g.
docs/DIAGNOSTICS.md#ppm101) with a minimal triggering example and the
idiomatic fix.
"""

from __future__ import annotations

from dataclasses import dataclass, field

#: Severity levels, most severe first.
SEVERITIES = ("error", "warning", "note")

#: Every stable rule id, with a one-line summary.  ``--explain`` and
#: the docs tests key off this registry: each code must anchor a
#: ``### PPMxxx`` section of docs/DIAGNOSTICS.md.
ALL_CODES: dict[str, str] = {
    "PPM100": "source file could not be parsed (lint fallback)",
    "PPM101": "shared-variable access in the VP-private prologue",
    "PPM102": "global-shared write inside a node phase",
    "PPM103": "plain-write read-modify-write that should be accumulate",
    "PPM104": "read after write of one shared variable in one phase",
    "PPM105": "hard-coded VP count in ppm.do",
    "PPM201": "rank-order-dependent write conflict (dynamic)",
    "PPM202": "mixed plain write + accumulate on one element (dynamic)",
    "PPM203": "benign identical-value overlap (dynamic, warning)",
    "PPM301": "malformed fault probability or delay",
    "PPM302": "invalid fault target",
    "PPM303": "invalid checkpoint/recovery policy",
    "PPM304": "invalid retry policy",
    "PPM305": "invalid straggler factor",
    "PPM401": "provable cross-VP write-write overlap in one phase",
    "PPM402": "same-VP read after write; snapshot semantics apply",
    "PPM403": "accumulate-operator mismatch on overlapping rows",
    "PPM404": "index expression escapes the affine domain",
    "PPM405": "do() callee could not be resolved statically",
    "PPM406": "provable out-of-bounds access with a witness rank",
    "PPM407": "access bound unprovable against the declared extent",
    "PPM408": "shape/dtype incompatible with a downstream reader",
    "PPM409": "dead write: overwritten before any snapshot read",
    "PPM410": "liveness unanalyzable; pruning degrades to copy-all",
}


@dataclass(frozen=True)
class Diagnostic:
    """One finding of the sanitizer or the linter."""

    tool: str
    """``"sanitizer"``, ``"lint"`` or ``"dataflow"``."""

    rule: str
    """Stable rule id (``PPM1xx`` lint, ``PPM2xx`` sanitizer,
    ``PPM4xx`` dataflow verifier)."""

    severity: str
    """``"error"``, ``"warning"`` or ``"note"``."""

    message: str
    """Human-readable description of the finding."""

    # -- static (lint) location ---------------------------------------
    path: str | None = None
    line: int | None = None

    # -- dynamic (sanitizer) context ----------------------------------
    phase_index: int | None = None
    phase_kind: str | None = None
    variable: str | None = None
    """Name of the shared variable involved."""
    rows: tuple[int, ...] = field(default_factory=tuple)
    """Sample of conflicting axis-0 rows (capped, sorted)."""
    ranks: tuple[int, ...] = field(default_factory=tuple)
    """Global VP ranks involved in the conflict (capped, sorted)."""

    # -- content-fingerprint context (baseline suppression v2) ---------
    expr: str | None = None
    """Source of the access/index expression the finding is about
    (whitespace-normalized); part of the v2 content fingerprint."""
    kernel: str | None = None
    """Name of the PPM function the finding was raised in."""

    def __post_init__(self) -> None:
        if self.severity not in SEVERITIES:
            raise ValueError(
                f"severity must be one of {SEVERITIES}, got {self.severity!r}"
            )

    def format(self) -> str:
        """One-line rendering, ``path:line:`` prefixed for static
        (lint/dataflow) findings and phase/variable-prefixed for
        sanitizer ones."""
        if self.tool == "lint":
            loc = f"{self.path or '<source>'}:{self.line or 0}: "
            return f"{loc}{self.rule} [{self.severity}] {self.message}"
        if self.tool == "dataflow":
            loc = f"{self.path or '<source>'}:{self.line or 0}: "
            where = []
            if self.phase_index is not None:
                where.append(f"phase {self.phase_index} ({self.phase_kind})")
            if self.variable is not None:
                where.append(f"var {self.variable!r}")
            ctx = "; ".join(where)
            return f"{loc}{self.rule} [{self.severity}] {self.message}" + (
                f" ({ctx})" if ctx else ""
            )
        where = []
        if self.phase_index is not None:
            where.append(f"phase {self.phase_index} ({self.phase_kind})")
        if self.variable is not None:
            where.append(f"var {self.variable!r}")
        if self.rows:
            where.append(f"rows {list(self.rows)}")
        if self.ranks:
            where.append(f"VP ranks {list(self.ranks)}")
        ctx = "; ".join(where)
        return f"{self.rule} [{self.severity}] {self.message}" + (
            f" ({ctx})" if ctx else ""
        )

    def __str__(self) -> str:
        return self.format()

    def to_dict(self) -> dict:
        """JSON-ready representation (for the CLI's ``--json``)."""
        out = {
            "tool": self.tool,
            "rule": self.rule,
            "severity": self.severity,
            "message": self.message,
        }
        if self.tool == "lint":
            out["path"] = self.path
            out["line"] = self.line
        elif self.tool == "dataflow":
            out.update(
                path=self.path,
                line=self.line,
                phase_index=self.phase_index,
                phase_kind=self.phase_kind,
                variable=self.variable,
            )
        else:
            out.update(
                phase_index=self.phase_index,
                phase_kind=self.phase_kind,
                variable=self.variable,
                rows=list(self.rows),
                ranks=list(self.ranks),
            )
        return out
