"""Liveness analysis: dead writes, read-set certificates, pruning plans.

The snapshot engine copies every shared array on commit so that views
handed out earlier in the round (phase-start snapshots, rule R1) stay
valid while the next round's writes land.  That copy is wasted work
whenever **no view of the array outlives the phase segment it was
taken in** — the commit may then reuse the buffer in place.  This
module proves that property per shared parameter of a kernel and
packages the result as a :class:`LivenessPlan`, which
:mod:`repro.analysis.certify` embeds into the kernel certificate and
``run_ppm(..., snapshot="pruned")`` consumes.

The proof is a flow-sensitive *view-taint* analysis over the kernel's
AST.  Subscripting a shared parameter with a basic index (a slice or
a scalar) yields a *view* tainted with that parameter; arithmetic,
comparisons, reductions and fancy indexing launder taint (numpy
allocates fresh arrays); aliasing operations (``.reshape``,
``np.asarray`` …) propagate it.  A tainted value *escapes* — making
its parameter unprunable — when it is returned, stored into a
non-local structure, captured by a nested function or lambda, passed
to a call the analysis cannot resolve, or **used in a different phase
segment than it was bound in** (a commit fires in between, and an
in-place commit would mutate the bytes under the view).

Interprocedural reach: plain-name callees are resolved to their
``ast.FunctionDef`` (same-module statically; through the live
function's ``__globals__`` when certifying) and classified by a
*callee effect* — ``"safe"`` (arguments neither retained nor
returned), ``"alias"`` (the return value may alias an argument) or
``"escape"``.  Unresolvable plain calls with tainted arguments escape
conservatively.  Method calls on opaque receivers are assumed
non-retaining (they may alias their result, never stash an argument)
— the standing contract for numpy/scipy-style APIs this repository's
apps use.

Diagnostics:

* **PPM409** (warning) — a dead write: the value a phase writes is
  provably overwritten by a later phase before any VP or the driver
  can read it;
* **PPM410** (warning) — the kernel's phase structure is unanalyzable,
  so the liveness plan degrades to "copy everything" (no pruning).
"""

from __future__ import annotations

import ast
from bisect import bisect_right
from dataclasses import dataclass

from repro.analysis.diagnostics import Diagnostic
from repro.analysis.lint import FunctionModel
from repro.analysis.summaries import (
    SET_TOP,
    SET_WHOLE,
    cross_vp_relation,
    same_vp_relation,
)

__all__ = ["LivenessPlan", "analyze_liveness"]


@dataclass(frozen=True)
class LivenessPlan:
    """Per-kernel snapshot-pruning certificate."""

    kernel: str
    analyzable: bool
    #: Shared *parameter* names whose commits may skip the snapshot
    #: copy: no view of the array provably outlives its phase segment.
    prunable: frozenset
    #: Per phase segment, the shared parameters it reads.
    reads_by_phase: tuple
    #: ``(param, why)`` pairs explaining every unprunable parameter.
    reasons: tuple

    def describe(self) -> str:
        names = ", ".join(sorted(self.prunable)) or "<none>"
        return f"{self.kernel}: prunable {{{names}}}"


# -- numpy/scipy call classification -----------------------------------
#: Module roots whose functions return fresh arrays unless listed in
#: :data:`ALIAS_FNS` (the standing numpy-API contract).
_NUMPYISH = {"np", "numpy", "sp", "scipy", "spla", "sps", "linalg", "npl"}

#: Module functions whose result may alias an argument.
ALIAS_FNS = {
    "asarray", "atleast_1d", "atleast_2d", "ravel", "reshape",
    "ascontiguousarray", "asfortranarray", "broadcast_to", "squeeze",
    "transpose", "swapaxes", "moveaxis", "expand_dims",
}

#: Methods whose result may alias the receiver.
ALIAS_METHODS = {
    "reshape", "view", "ravel", "transpose", "swapaxes", "squeeze",
}

#: Methods that return fresh objects (copies, reductions, casts).
FRESH_METHODS = {
    "copy", "sum", "mean", "std", "var", "astype", "min", "max", "dot",
    "tolist", "item", "any", "all", "argmin", "argmax", "argsort",
    "cumsum", "searchsorted", "round", "nonzero", "prod", "trace",
}

#: Attributes that are plain metadata, not array aliases.
FRESH_ATTRS = {"shape", "size", "ndim", "dtype", "nbytes", "itemsize"}

#: Builtins that never retain their arguments.
SAFE_BUILTINS = {
    "float", "int", "bool", "str", "len", "abs", "min", "max", "sum",
    "range", "print", "enumerate", "zip", "sorted", "list", "tuple",
    "dict", "set", "round", "divmod", "isinstance", "repr", "any",
    "all", "reversed", "id", "hash", "format",
}

#: Module functions certainly returning (index) arrays — used to
#: classify subscripts as fancy (copying) rather than basic (viewing).
ARRAYISH_FNS = {
    "unique", "arange", "nonzero", "flatnonzero", "where",
    "searchsorted", "concatenate", "argsort", "array", "cumsum",
    "sort", "zeros", "ones", "empty", "full", "linspace",
    "zeros_like", "ones_like", "empty_like",
}


class _State:
    """Flow state of the taint walk."""

    __slots__ = ("origins", "bind", "arrayish")

    def __init__(self):
        self.origins: dict[str, frozenset] = {}
        self.bind: dict[str, tuple] = {}  # name -> (seg, lineno)
        self.arrayish: set[str] = set()

    def copy(self) -> "_State":
        st = _State()
        st.origins = dict(self.origins)
        st.bind = dict(self.bind)
        st.arrayish = set(self.arrayish)
        return st

    def merge(self, other: "_State") -> None:
        for name, o in other.origins.items():
            self.origins[name] = self.origins.get(name, frozenset()) | o
        for name, pos in other.bind.items():
            mine = self.bind.get(name)
            self.bind[name] = pos if mine is None else min(mine, pos)
        self.arrayish &= other.arrayish  # certain-array only if both


class _TaintPass:
    def __init__(self, fn: FunctionModel, resolve_callee):
        self.fn = fn
        self.shared = set(fn.shared_params)
        self.ctx_name = fn.ctx_name
        self.yield_lines = sorted(y.lineno for y in fn.yields)
        self.resolve = resolve_callee or (lambda name: None)
        self.dead: dict[str, str] = {}  # param -> first escape reason
        self._effect_cache: dict = {}
        self._loops: list[dict] = []  # {"has_yield": bool}

    # -- plumbing ------------------------------------------------------
    def seg(self, lineno: int) -> int:
        return bisect_right(self.yield_lines, lineno) - 1

    def escape(self, origins, why: str) -> None:
        for o in origins:
            self.dead.setdefault(o, why)

    def run(self) -> None:
        st = _State()
        self.exec_block(self.fn.node.body, st)

    # -- statements ----------------------------------------------------
    def exec_block(self, body, st: _State) -> None:
        for stmt in body:
            self.exec_stmt(stmt, st)

    def exec_stmt(self, stmt, st: _State) -> None:
        if isinstance(stmt, ast.Expr):
            if isinstance(stmt.value, ast.Yield):
                return
            self.use(stmt.value, st)
        elif isinstance(stmt, (ast.Assign, ast.AnnAssign)):
            value = getattr(stmt, "value", None)
            if value is None:
                return
            ov = self.use(value, st)
            arr = self._is_arrayish(value, st)
            targets = (
                stmt.targets if isinstance(stmt, ast.Assign) else [stmt.target]
            )
            for t in targets:
                self.assign_target(t, ov, stmt.lineno, st, arrayish=arr)
        elif isinstance(stmt, ast.AugAssign):
            self.use(stmt.value, st)
            t = stmt.target
            if isinstance(t, ast.Name):
                tv = st.origins.get(t.id, frozenset())
                if tv:
                    self.escape(
                        tv,
                        f"augmented assignment at line {stmt.lineno} "
                        "mutates a snapshot view in place",
                    )
                st.origins[t.id] = frozenset()
                st.bind[t.id] = (self.seg(stmt.lineno), stmt.lineno)
            elif isinstance(t, ast.Subscript):
                self._store_subscript(t, frozenset(), stmt.lineno, st)
        elif isinstance(stmt, ast.If):
            self.use(stmt.test, st)
            s1, s2 = st.copy(), st.copy()
            self.exec_block(stmt.body, s1)
            self.exec_block(stmt.orelse, s2)
            st.origins, st.bind, st.arrayish = s1.origins, s1.bind, s1.arrayish
            st.merge(s2)
        elif isinstance(stmt, (ast.For, ast.While)):
            self.exec_loop(stmt, st)
        elif isinstance(stmt, ast.Return):
            if stmt.value is not None:
                ov = self.use(stmt.value, st)
                if ov:
                    self.escape(
                        ov,
                        f"returned from the kernel at line {stmt.lineno}",
                    )
        elif isinstance(stmt, ast.With):
            for item in stmt.items:
                ov = self.use(item.context_expr, st)
                if item.optional_vars is not None:
                    self.assign_target(
                        item.optional_vars, ov, stmt.lineno, st
                    )
            self.exec_block(stmt.body, st)
        elif isinstance(stmt, ast.Try):
            self.exec_block(stmt.body, st)
            for handler in stmt.handlers:
                self.exec_block(handler.body, st)
            self.exec_block(stmt.orelse, st)
            self.exec_block(stmt.finalbody, st)
        elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            self._capture_escape(stmt, st, "nested function")
        elif isinstance(stmt, (ast.Global, ast.Nonlocal)):
            caught = frozenset(
                o
                for name in stmt.names
                for o in st.origins.get(name, frozenset())
            )
            if caught:
                self.escape(
                    caught, f"global/nonlocal binding at line {stmt.lineno}"
                )
        elif isinstance(stmt, ast.Delete):
            pass
        # Pass/Raise/Assert/Import/...: no taint effect
        elif isinstance(stmt, (ast.Raise, ast.Assert)):
            for sub in ast.iter_child_nodes(stmt):
                if isinstance(sub, ast.expr):
                    self.use(sub, st)

    def exec_loop(self, stmt, st: _State) -> None:
        has_yield = any(
            isinstance(n, ast.Yield) for n in ast.walk(stmt)
        )
        if isinstance(stmt, ast.For):
            ov = self.use(stmt.iter, st)
            self.assign_target(stmt.target, ov, stmt.lineno, st)
        else:
            self.use(stmt.test, st)
        self._loops.append({"has_yield": has_yield})
        try:
            # Pass 1 discovers the loop's bindings; merging the entry
            # state back keeps the *earliest* bind position, so pass 2
            # sees cross-iteration uses against a widened state.
            before = st.copy()
            self.exec_block(stmt.body, st)
            st.merge(before)
            self.exec_block(stmt.body, st)
        finally:
            self._loops.pop()
        self.exec_block(stmt.orelse, st)

    def assign_target(
        self, t, origins, lineno, st: _State, arrayish: bool = False
    ) -> None:
        if isinstance(t, ast.Name):
            st.origins[t.id] = frozenset(origins)
            st.bind[t.id] = (self.seg(lineno), lineno)
            if arrayish:
                st.arrayish.add(t.id)
            else:
                st.arrayish.discard(t.id)
        elif isinstance(t, (ast.Tuple, ast.List)):
            for elt in t.elts:
                self.assign_target(elt, origins, lineno, st)
        elif isinstance(t, ast.Subscript):
            self._store_subscript(t, frozenset(origins), lineno, st)
        elif isinstance(t, ast.Attribute):
            self.use(t.value, st)
            if origins:
                self.escape(
                    origins,
                    f"stored into an object attribute at line {lineno}",
                )
        elif isinstance(t, ast.Starred):
            self.assign_target(t.value, origins, lineno, st)

    def _store_subscript(self, t, value_origins, lineno, st: _State) -> None:
        base = t.value
        self.use(t.slice, st)
        if self._shared_of(base, st) is not None:
            # A shared write: the runtime copies the value eagerly at
            # record time, so a tainted RHS is fine.
            return
        if isinstance(base, ast.Name):
            bo = st.origins.get(base.id, frozenset())
            if bo:
                self.escape(
                    bo,
                    f"store through a snapshot view at line {lineno}",
                )
            if value_origins:
                # A local container now holds the view.
                st.origins[base.id] = bo | value_origins
                st.bind[base.id] = min(
                    st.bind.get(base.id, (self.seg(lineno), lineno)),
                    (self.seg(lineno), lineno),
                )
            return
        bo = self.use(base, st)
        if bo:
            self.escape(
                bo, f"store through a snapshot view at line {lineno}"
            )
        if value_origins:
            self.escape(
                value_origins,
                f"stored into an unresolved container at line {lineno}",
            )

    def _capture_escape(self, node, st: _State, what: str) -> None:
        """A lambda/nested def capturing a shared handle or a tainted
        name lets views outlive the segment — escape those."""
        args = node.args
        bound = {a.arg for a in args.args}
        bound |= {a.arg for a in args.posonlyargs}
        bound |= {a.arg for a in args.kwonlyargs}
        for extra in (args.vararg, args.kwarg):
            if extra is not None:
                bound.add(extra.arg)
        caught: set[str] = set()
        for sub in ast.walk(node):
            if isinstance(sub, ast.Name) and sub.id not in bound:
                if sub.id in self.shared:
                    caught.add(sub.id)
                else:
                    caught |= st.origins.get(sub.id, frozenset())
        if caught:
            self.escape(
                caught,
                f"captured by a {what} at line {node.lineno}",
            )

    # -- expressions ---------------------------------------------------
    def use(self, node, st: _State) -> frozenset:
        """Evaluate an expression for taint; returns the origin set of
        its value and records escapes for cross-segment view uses."""
        if node is None or isinstance(node, ast.Constant):
            return frozenset()
        if isinstance(node, ast.Name):
            if node.id in self.shared:
                return frozenset((node.id,))
            origins = st.origins.get(node.id, frozenset())
            if origins:
                bseg, bline = st.bind.get(
                    node.id, (self.seg(node.lineno), node.lineno)
                )
                if self.seg(node.lineno) != bseg:
                    self.escape(
                        origins,
                        f"view bound at line {bline} used at line "
                        f"{node.lineno}, across a phase commit",
                    )
                elif node.lineno < bline and any(
                    l["has_yield"] for l in self._loops
                ):
                    self.escape(
                        origins,
                        f"view bound at line {bline} reused at line "
                        f"{node.lineno} in the next loop round, across "
                        "a phase commit",
                    )
            return origins
        if isinstance(node, ast.Attribute):
            base = self.use(node.value, st)
            return frozenset() if node.attr in FRESH_ATTRS else base
        if isinstance(node, ast.Subscript):
            return self._use_subscript(node, st)
        if isinstance(node, ast.Call):
            return self._use_call(node, st)
        if isinstance(node, (ast.BinOp, ast.BoolOp, ast.Compare,
                             ast.UnaryOp)):
            for sub in ast.iter_child_nodes(node):
                if isinstance(sub, ast.expr):
                    self.use(sub, st)
            return frozenset()  # numpy arithmetic allocates fresh
        if isinstance(node, ast.IfExp):
            self.use(node.test, st)
            return self.use(node.body, st) | self.use(node.orelse, st)
        if isinstance(node, (ast.Tuple, ast.List, ast.Set)):
            out = frozenset()
            for e in node.elts:
                out |= self.use(e, st)
            return out
        if isinstance(node, ast.Dict):
            out = frozenset()
            for k, v in zip(node.keys, node.values):
                if k is not None:
                    out |= self.use(k, st)
                out |= self.use(v, st)
            return out
        if isinstance(node, ast.Lambda):
            self._capture_escape(node, st, "lambda")
            return frozenset()
        if isinstance(node, (ast.ListComp, ast.SetComp, ast.GeneratorExp,
                             ast.DictComp)):
            out = frozenset()
            for gen in node.generators:
                out |= self.use(gen.iter, st)
                for cond in gen.ifs:
                    self.use(cond, st)
            for attr in ("elt", "key", "value"):
                sub = getattr(node, attr, None)
                if sub is not None:
                    out |= self.use(sub, st)
            return out
        if isinstance(node, ast.Starred):
            return self.use(node.value, st)
        if isinstance(node, (ast.Slice,)):
            for sub in (node.lower, node.upper, node.step):
                if sub is not None:
                    self.use(sub, st)
            return frozenset()
        if isinstance(node, ast.Yield):
            return frozenset()
        # anything else: walk children conservatively
        out = frozenset()
        for sub in ast.iter_child_nodes(node):
            if isinstance(sub, ast.expr):
                out |= self.use(sub, st)
        return out

    def _shared_of(self, base, st: _State) -> str | None:
        """The shared parameter a subscript base denotes: ``X`` or a
        container element ``C[l]``."""
        if isinstance(base, ast.Name) and base.id in self.shared:
            return base.id
        if (
            isinstance(base, ast.Subscript)
            and isinstance(base.value, ast.Name)
            and base.value.id in self.shared
            and self.fn.shared_params[base.value.id].container
        ):
            return base.value.id
        return None

    def _use_subscript(self, node, st: _State) -> frozenset:
        shared = self._shared_of(node.value, st)
        self.use(node.slice, st)
        if shared is not None:
            sv = self.fn.shared_params[shared]
            if sv.container and isinstance(node.value, ast.Name):
                return frozenset((shared,))  # C[l]: still a handle
            if self._is_basic_index(node.slice, st):
                return frozenset((shared,))  # a snapshot view
            return frozenset()  # fancy indexing copies
        base = self.use(node.value, st)
        if not base:
            return frozenset()
        if self._is_basic_index(node.slice, st):
            return base  # view of a view
        return frozenset()

    def _is_basic_index(self, slc, st: _State) -> bool:
        """Basic (viewing) vs fancy (copying) numpy indexing, erring on
        the *basic* side when uncertain."""
        if isinstance(slc, ast.Slice):
            return True
        if isinstance(slc, ast.Tuple):
            return all(self._is_basic_index(e, st) for e in slc.elts)
        if isinstance(slc, ast.Constant):
            return True
        if isinstance(slc, ast.Name):
            return slc.id not in st.arrayish
        if isinstance(slc, (ast.Compare, ast.Call, ast.List)):
            return False  # boolean mask / computed array / list: fancy
        if isinstance(slc, ast.Subscript):
            return not self._is_arrayish(slc, st)
        if isinstance(slc, (ast.BinOp, ast.UnaryOp)):
            return not any(
                isinstance(n, ast.Name) and n.id in st.arrayish
                for n in ast.walk(slc)
            )
        return True

    def _is_arrayish(self, node, st: _State) -> bool:
        """Certainly-an-array classification for index expressions."""
        if isinstance(node, ast.Name):
            return node.id in st.arrayish
        if isinstance(node, ast.Subscript):
            slc = node.slice
            if isinstance(slc, ast.Slice):
                return True
            if isinstance(slc, ast.Tuple) and any(
                isinstance(e, ast.Slice) for e in slc.elts
            ):
                return True
            return self._is_arrayish(node.value, st) and not self._is_basic_index(
                slc, st
            )
        if isinstance(node, ast.Call):
            dotted = _dotted(node.func)
            if dotted is not None:
                root, _, tail = dotted.partition(".")
                leaf = dotted.split(".")[-1]
                if root in _NUMPYISH and leaf in ARRAYISH_FNS:
                    return True
            return False
        if isinstance(node, ast.BinOp):
            return self._is_arrayish(node.left, st) or self._is_arrayish(
                node.right, st
            )
        if isinstance(node, ast.Compare):
            return self._is_arrayish(node.left, st) or any(
                self._is_arrayish(c, st) for c in node.comparators
            )
        if isinstance(node, ast.UnaryOp):
            return self._is_arrayish(node.operand, st)
        return False

    # -- calls ---------------------------------------------------------
    def _use_call(self, node, st: _State) -> frozenset:
        func = node.func
        arg_nodes = list(node.args) + [kw.value for kw in node.keywords]
        arg_origins = frozenset()
        for a in arg_nodes:
            arg_origins |= self.use(a, st)

        if isinstance(func, ast.Attribute):
            # Module function on a numpy-ish root?
            dotted = _dotted(func)
            if dotted is not None:
                root = dotted.split(".")[0]
                if root in _NUMPYISH:
                    if func.attr in ALIAS_FNS:
                        return arg_origins
                    return frozenset()  # fresh-array contract
            recv_node = func.value
            # ctx methods (reduce/scan/work/...) copy their inputs.
            if (
                isinstance(recv_node, ast.Name)
                and recv_node.id == self.ctx_name
            ):
                return frozenset()
            # Shared-handle methods (local_range, accumulate, ...).
            if self._shared_of(recv_node, st) is not None:
                return frozenset()
            recv = self.use(recv_node, st)
            if func.attr in FRESH_METHODS:
                return frozenset()
            if func.attr in ALIAS_METHODS:
                return recv
            # Unknown method on a plain local object fed tainted data:
            # the receiver may retain the argument (list.append et al.),
            # putting a snapshot view beyond the segment tracker.  The
            # non-retaining contract only covers array receivers.
            if (
                arg_origins
                and not recv
                and not self._is_arrayish(recv_node, st)
            ):
                self.escape(
                    arg_origins,
                    f".{func.attr}(...) on a non-array object at line "
                    f"{node.lineno} may retain the view",
                )
                return frozenset()
            # Unknown method on an array: may alias, assumed not to
            # retain (the numpy/scipy API contract documented above).
            return recv | arg_origins

        if isinstance(func, ast.Name):
            name = func.id
            if name in SAFE_BUILTINS:
                return frozenset()
            resolved = self.resolve(name)
            sub_resolve = self.resolve
            if isinstance(resolved, tuple):
                resolved, sub_resolve = resolved
            if isinstance(resolved, ast.FunctionDef):
                eff = self.callee_effect(resolved, sub_resolve)
                if eff == "safe":
                    return frozenset()
                if eff == "alias":
                    return arg_origins
                if arg_origins:
                    self.escape(
                        arg_origins,
                        f"passed to {name}() at line {node.lineno}, "
                        "which lets it escape",
                    )
                return arg_origins
            if arg_origins:
                self.escape(
                    arg_origins,
                    f"passed to unresolved callee {name}() at line "
                    f"{node.lineno}",
                )
            return frozenset()

        # Dynamic callee expression: escape tainted args.
        self.use(func, st)
        if arg_origins:
            self.escape(
                arg_origins,
                f"passed through a dynamic call at line {node.lineno}",
            )
        return frozenset()

    # -- callee effects ------------------------------------------------
    def callee_effect(self, fdef: ast.FunctionDef, sub_resolve) -> str:
        """``"safe"`` / ``"alias"`` / ``"escape"`` for a helper: do its
        arguments escape it, alias its return value, or neither?"""
        key = (fdef.name, fdef.lineno, getattr(fdef, "col_offset", 0))
        cached = self._effect_cache.get(key)
        if cached is not None:
            return cached
        self._effect_cache[key] = "escape"  # recursion guard
        shell = FunctionModel(node=fdef, name=fdef.name, ctx_name=None)
        inner = _TaintPass(shell, sub_resolve)
        inner._effect_cache = self._effect_cache
        st = _State()
        for a in fdef.args.args:
            st.origins[a.arg] = frozenset((a.arg,))
            st.bind[a.arg] = (-1, fdef.lineno)
        returns_alias = [False]

        def exec_return(stmt, state):
            if stmt.value is not None:
                ov = inner.use(stmt.value, state)
                if ov:
                    returns_alias[0] = True

        # Reuse the statement walker but intercept Return.
        orig_exec = inner.exec_stmt

        def exec_stmt(stmt, state):
            if isinstance(stmt, ast.Return):
                exec_return(stmt, state)
                return
            orig_exec(stmt, state)

        inner.exec_stmt = exec_stmt
        try:
            inner.exec_block(fdef.body, st)
        except RecursionError:  # pragma: no cover - pathological helpers
            self._effect_cache[key] = "escape"
            return "escape"
        if inner.dead:
            eff = "escape"
        elif returns_alias[0]:
            eff = "alias"
        else:
            eff = "safe"
        self._effect_cache[key] = eff
        return eff


# ======================================================================
# PPM409: dead writes
# ======================================================================
def _dead_writes(fn: FunctionModel, summary, path) -> list[Diagnostic]:
    diags: list[Diagnostic] = []
    loops_with_yields = any(
        isinstance(loop, (ast.For, ast.While))
        and any(isinstance(n, ast.Yield) for n in ast.walk(loop))
        for loop in ast.walk(fn.node)
    )
    if loops_with_yields or not summary.analyzable:
        # Segments repeat dynamically under phase loops; the static
        # "later phase" order is then unsound for deadness.
        return diags
    accesses = [
        (seg, phase, a)
        for seg, phase in enumerate(summary.phases)
        for a in phase.accesses
    ]
    for sw, pw, w in accesses:
        if w.kind != "write" or w.guards or w.iset == SET_TOP:
            continue
        killer = None
        for sk, _pk, k in accesses:
            if (
                k.kind == "write"
                and k is not w
                and sk > sw
                and not k.guards
                and k.variable == w.variable
                and (k.iset == w.iset or k.iset == SET_WHOLE)
            ):
                killer = (sk, k)
                break
        if killer is None:
            continue
        sk, k = killer
        observed = False
        for sr, _pr, r in accesses:
            if (
                r.variable == w.variable
                and r.kind == "read"
                and sw < sr <= sk
            ):
                if (
                    same_vp_relation(r.iset, w.iset) != "disjoint"
                    or cross_vp_relation(r.iset, w.iset, "global")
                    != "disjoint"
                ):
                    observed = True
                    break
        if observed:
            continue
        diags.append(Diagnostic(
            tool="dataflow",
            rule="PPM409",
            severity="warning",
            message=(
                f"dead write: `{w.expr}` (line {w.lineno}) is "
                f"overwritten by `{k.expr}` (line {k.lineno}) before "
                "any snapshot read observes it"
            ),
            path=path,
            line=w.lineno,
            phase_index=sw,
            phase_kind=pw.kind,
            variable=w.variable,
            expr=w.expr,
        ))
    return diags


# ======================================================================
# Entry point
# ======================================================================
def analyze_liveness(
    fn: FunctionModel, summary, path: str, resolve_callee=None
) -> tuple[LivenessPlan, list[Diagnostic]]:
    """Run the liveness pass for one kernel; returns the pruning plan
    and any PPM409/PPM410 diagnostics."""
    diags: list[Diagnostic] = []
    reads_by_phase = tuple(
        frozenset(
            a.variable for a in phase.accesses if a.kind == "read"
        )
        for phase in summary.phases
    )
    if not summary.analyzable:
        diags.append(Diagnostic(
            tool="dataflow",
            rule="PPM410",
            severity="warning",
            message=(
                f"liveness of {fn.name!r} is unanalyzable "
                f"({summary.reason}); the snapshot-pruning plan "
                "degrades to copying every shared array"
            ),
            path=path,
            line=fn.node.lineno,
            kernel=fn.name,
        ))
        plan = LivenessPlan(
            kernel=fn.name,
            analyzable=False,
            prunable=frozenset(),
            reads_by_phase=reads_by_phase,
            reasons=tuple(
                (p, "kernel unanalyzable") for p in sorted(fn.shared_params)
            ),
        )
        return plan, diags

    taint = _TaintPass(fn, resolve_callee)
    try:
        taint.run()
    except RecursionError:  # pragma: no cover - pathological inputs
        taint.dead = {p: "kernel too deep to analyze" for p in taint.shared}
    prunable = frozenset(taint.shared - set(taint.dead))
    plan = LivenessPlan(
        kernel=fn.name,
        analyzable=True,
        prunable=prunable,
        reads_by_phase=reads_by_phase,
        reasons=tuple(sorted(taint.dead.items())),
    )
    diags.extend(_dead_writes(fn, summary, path))
    return plan, diags


def _dotted(node) -> str | None:
    parts = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None
