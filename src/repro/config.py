"""Machine and cost-model configuration for the simulated cluster.

The paper evaluates PPM on *Franklin*, a Cray XT4 with 9660 four-core
nodes (paper section 4.1).  We do not have that machine, so every
experiment in this repository runs on a deterministic cost simulator
whose behaviour is fully described by a :class:`MachineConfig`.  All of
the effects the paper's discussion hinges on are explicit knobs here:

* per-message CPU overhead of MPI, including *intra-node* messages
  (paper section 4.5: "the MPI processes running on the cores of the
  same node still try to communicate by message-passing ... it can
  still incur much overhead");
* the software overhead of PPM shared-variable accesses (paper: "unlike
  accesses to variables in standard C language, accesses to the PPM
  shared variables go through the PPM runtime library, which will bring
  in some overhead");
* the runtime's ability to bundle fine-grained remote accesses, to
  overlap communication with computation, and to schedule the NIC so
  that many cores do not contend (paper section 3.3, "Automatic
  scheduling of computation and communication needs").

Times are in seconds of *simulated* time; sizes in bytes.
"""

from __future__ import annotations

import dataclasses
import math
from dataclasses import dataclass


@dataclass(frozen=True)
class MachineConfig:
    """Complete description of a simulated cluster and its cost model.

    Instances are immutable; use :meth:`replace` to derive variants
    (ablations flip single fields this way).
    """

    # ------------------------------------------------------------------
    # Topology
    # ------------------------------------------------------------------
    n_nodes: int = 1
    """Number of nodes in the cluster."""

    cores_per_node: int = 4
    """Physical cores per node (Franklin: 4; the paper's outlook is
    "far beyond the current 4 cores per node")."""

    # ------------------------------------------------------------------
    # Computation
    # ------------------------------------------------------------------
    flop_time: float = 1.0e-9
    """Seconds per floating-point operation on one core (sustained,
    not peak; ~1 GFlop/s per Opteron core on real kernels)."""

    mem_access_time: float = 4.0e-9
    """Seconds per irregular (cache-unfriendly) memory access on a core.
    Charged for explicitly-declared random local accesses."""

    # ------------------------------------------------------------------
    # Inter-node network (switch-level alpha/beta model)
    # ------------------------------------------------------------------
    net_alpha: float = 6.0e-6
    """Inter-node message latency in seconds (XT4 SeaStar-class)."""

    net_beta: float = 0.625e-9
    """Inter-node seconds per byte (~1.6 GB/s per link)."""

    # ------------------------------------------------------------------
    # Intra-node messaging (MPI between ranks on one node)
    # ------------------------------------------------------------------
    intra_alpha: float = 1.0e-6
    """Latency of an MPI message between two ranks of the same node.
    Cheaper than the network but, as the paper stresses, not free."""

    intra_beta: float = 0.33e-9
    """Seconds per byte for intra-node MPI copies (~3 GB/s)."""

    # ------------------------------------------------------------------
    # Software (CPU) overheads
    # ------------------------------------------------------------------
    mpi_msg_overhead: float = 1.0e-6
    """CPU seconds charged to a rank for posting or completing one MPI
    message (matching, envelope handling).  Paid per message on both
    the sender and the receiver, for intra-node messages too — unless
    ``smartmap`` is enabled."""

    smartmap: bool = False
    """Model the SmartMap enhancement (paper footnote 1): intra-node
    messages become direct shared-memory copies with negligible
    per-message CPU overhead."""

    smartmap_msg_overhead: float = 0.1e-6
    """Per-message CPU overhead for intra-node messages when
    ``smartmap`` is on."""

    # ------------------------------------------------------------------
    # PPM runtime overheads
    # ------------------------------------------------------------------
    ppm_access_call_overhead: float = 2.0e-7
    """CPU seconds per shared-variable *access operation* (one indexing
    call, however many elements it touches): the runtime-library entry,
    ownership lookup and bounds checks."""

    ppm_access_per_element: float = 2.0e-8
    """CPU seconds per *element* moved through a shared-variable access
    (address translation, recording for the commit protocol).  This is
    the overhead the paper blames for PPM losing to MPI on one node."""

    ppm_node_access_per_element: float = 0.5e-8
    """Per-element overhead for node-shared accesses (cheaper: no
    ownership directory, physical shared memory)."""

    ppm_commit_per_element: float = 1.0e-8
    """CPU seconds per element processed at phase commit (applying
    buffered writes, conflict resolution)."""

    # ------------------------------------------------------------------
    # PPM runtime optimisations (the paper's section 3.3 features)
    # ------------------------------------------------------------------
    bundling: bool = True
    """Bundle fine-grained remote accesses into coarse messages.
    Disabling this (ablation) sends one message per remote element."""

    bundle_max_bytes: int = 64 * 1024
    """Maximum payload of one bundled message."""

    overlap_fraction: float = 0.6
    """Fraction of phase communication the runtime hides under the
    phase's computation (0 disables the overlap optimisation)."""

    certified_overlap_fraction: float | None = None
    """Overlap fraction for phases carrying a static conflict-freedom
    certificate (``repro.analysis.certify``).  Certified phases touch
    provably disjoint rows, so the scheduler may overlap their remote
    traffic with compute more aggressively than the general
    ``overlap_fraction``.  ``None`` (default) disables the distinction
    — certified phases time identically to uncertified ones."""

    nic_scheduling: bool = True
    """PPM runtime serialises each node's traffic into one coordinated
    stream, avoiding the NIC contention that uncoordinated per-core MPI
    traffic suffers."""

    nic_contention_coeff: float = 0.25
    """Uncoordinated traffic from R cores of one node inflates its
    communication time by ``1 + (R - 1) * nic_contention_coeff``."""

    load_balancing: bool = False
    """Let the runtime reassign VPs to cores between phases based on
    each VP's measured cost in the previous phase (greedy
    longest-processing-time).  This is the paper's section-3 point that
    processor virtualisation "provides opportunities for the compiler
    and runtime system to do optimizations such as load balancing";
    off by default to match the static loop-conversion baseline."""

    # ------------------------------------------------------------------
    # Miscellaneous
    # ------------------------------------------------------------------
    barrier_alpha: float = 2.0e-6
    """Per-tree-level cost of a global barrier/collective step."""

    element_bytes: int = 8
    """Default payload bytes per shared-array element (float64)."""

    index_bytes: int = 8
    """Bytes of addressing metadata shipped per element in a read
    request or a scattered write bundle."""

    def __post_init__(self) -> None:
        # ConfigError lives in repro.core.errors; importing it at module
        # scope would cycle (repro.core.program imports this module), so
        # it is resolved on first validation instead.
        from repro.core.errors import ConfigError

        if self.n_nodes < 1:
            raise ConfigError(f"n_nodes must be >= 1, got {self.n_nodes}")
        if self.cores_per_node < 1:
            raise ConfigError(
                f"cores_per_node must be >= 1, got {self.cores_per_node}"
            )
        # Byte sizes must be positive: a zero element/index size makes
        # every per-element cost silently vanish and a zero (or
        # negative) bundle capacity divides by zero in bundling.
        for name in ("element_bytes", "index_bytes", "bundle_max_bytes"):
            if getattr(self, name) <= 0:
                raise ConfigError(
                    f"{name} must be positive, got {getattr(self, name)}"
                )
        if self.bundle_max_bytes < self.element_bytes + self.index_bytes:
            raise ConfigError("bundle_max_bytes too small to hold one element")
        if not 0.0 <= self.overlap_fraction <= 1.0:
            raise ConfigError("overlap_fraction must be in [0, 1]")
        if self.certified_overlap_fraction is not None and not (
            math.isfinite(self.certified_overlap_fraction)
            and 0.0 <= self.certified_overlap_fraction <= 1.0
        ):
            raise ConfigError(
                "certified_overlap_fraction must be None or in [0, 1]"
            )
        # Rates, latencies and overheads must be finite and
        # non-negative.  Zero is legal — degenerate zero-cost machines
        # are a supported test configuration — but a negative or
        # NaN/inf knob would propagate into negative or NaN simulated
        # times far from the mistake.
        for name in (
            "flop_time",
            "mem_access_time",
            "net_alpha",
            "net_beta",
            "intra_alpha",
            "intra_beta",
            "mpi_msg_overhead",
            "smartmap_msg_overhead",
            "ppm_access_call_overhead",
            "ppm_access_per_element",
            "ppm_node_access_per_element",
            "ppm_commit_per_element",
            "barrier_alpha",
            "nic_contention_coeff",
            "overlap_fraction",
        ):
            value = getattr(self, name)
            if not math.isfinite(value):
                raise ConfigError(f"{name} must be finite, got {value}")
            if value < 0:
                raise ConfigError(f"{name} must be non-negative, got {value}")

    # ------------------------------------------------------------------
    @property
    def total_cores(self) -> int:
        """Total core count of the cluster."""
        return self.n_nodes * self.cores_per_node

    def replace(self, **changes: object) -> "MachineConfig":
        """Return a copy with the given fields replaced."""
        return dataclasses.replace(self, **changes)

    def effective_msg_overhead(self, intra_node: bool) -> float:
        """Per-message CPU overhead for a message, honouring SmartMap."""
        if intra_node and self.smartmap:
            return self.smartmap_msg_overhead
        return self.mpi_msg_overhead


# ----------------------------------------------------------------------
# Presets
# ----------------------------------------------------------------------

def franklin(n_nodes: int = 1, **overrides: object) -> MachineConfig:
    """Franklin-like configuration: the paper's Cray XT4 test platform
    (4 cores per node, SeaStar-class network)."""
    cfg = MachineConfig(n_nodes=n_nodes, cores_per_node=4)
    return cfg.replace(**overrides) if overrides else cfg


def manycore(
    n_nodes: int = 1, cores_per_node: int = 64, **overrides: object
) -> MachineConfig:
    """The paper's outlook machine: nodes with many (hundreds of)
    cores.  NIC contention grows with the core count, which is exactly
    the regime where the paper predicts PPM's scheduling wins."""
    cfg = MachineConfig(n_nodes=n_nodes, cores_per_node=cores_per_node)
    return cfg.replace(**overrides) if overrides else cfg


def testing(n_nodes: int = 2, cores_per_node: int = 2, **overrides: object) -> MachineConfig:
    """Small, round-number configuration used throughout the unit
    tests.  Cost constants are inherited from the defaults."""
    cfg = MachineConfig(n_nodes=n_nodes, cores_per_node=cores_per_node)
    return cfg.replace(**overrides) if overrides else cfg
