"""repro — reproduction of the Parallel Phase Model (PPM).

Paper: Brightwell, Heroux, Wen, Wu.  *Parallel Phase Model: A
Programming Model for High-end Parallel Machines with Manycores.*
SAND2009-2287 / ICPP 2009.

Public API overview
-------------------
* :mod:`repro.config` — :class:`~repro.config.MachineConfig` and the
  ``franklin()`` / ``manycore()`` presets;
* :mod:`repro.machine` — the simulated cluster substrate;
* :mod:`repro.mpi` — the MPI-like message-passing layer (baselines);
* :mod:`repro.core` — the PPM programming model and runtime;
* :mod:`repro.apps` — the paper's three applications, each in PPM,
  MPI and serial-reference form;
* :mod:`repro.bench` — the experiment harness regenerating every
  figure and table of the paper's evaluation;
* :mod:`repro.obs` — phase-level tracing, run reports and trace
  exporters (``run_ppm(..., trace=True)``, ``python -m repro.obs``).
"""

from repro.config import MachineConfig, franklin, manycore, testing
from repro.core import (
    GlobalShared,
    NodeShared,
    PpmError,
    PpmProgram,
    VpContext,
    ppm_function,
    run_ppm,
)
from repro.machine import Cluster
from repro.mpi import run_mpi
from repro.obs import PhaseTrace, RunReport

__version__ = "1.0.0"

__all__ = [
    "Cluster",
    "GlobalShared",
    "MachineConfig",
    "NodeShared",
    "PhaseTrace",
    "PpmError",
    "PpmProgram",
    "RunReport",
    "VpContext",
    "__version__",
    "franklin",
    "manycore",
    "ppm_function",
    "run_mpi",
    "run_ppm",
    "testing",
]
