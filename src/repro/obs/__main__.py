"""Render observability reports from saved traces.

Usage::

    python -m repro.obs report RUN.trace.json [--json]
    python -m repro.obs chrome RUN.trace.json -o RUN.chrome.json
    python -m repro.obs demo [--nodes N] [--out RUN.trace.json]
                             [--chrome RUN.chrome.json]

``report`` prints the per-phase metrics table (or the report as JSON
with ``--json``); ``chrome`` converts a saved trace to the Chrome
``trace_event`` format for chrome://tracing / Perfetto; ``demo`` runs
the paper's CG application with tracing enabled and saves the trace —
the same recipe CI uses to publish a sample trace artifact.

Exit status: 0 on success, 2 on usage errors or unreadable traces.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.obs.export import (
    format_report,
    load_trace,
    report_to_dict,
    save_chrome_trace,
    save_trace,
)
from repro.obs.metrics import RunReport


def _load(path: str):
    try:
        return load_trace(path)
    except (OSError, ValueError, json.JSONDecodeError) as exc:
        print(f"error: cannot read trace {path!r}: {exc}", file=sys.stderr)
        raise SystemExit(2) from None


def cmd_report(args: argparse.Namespace) -> int:
    report = RunReport.from_trace(_load(args.trace))
    if args.json:
        print(json.dumps(report_to_dict(report), indent=1))
    else:
        print(format_report(report))
    return 0


def cmd_chrome(args: argparse.Namespace) -> int:
    trace = _load(args.trace)
    save_chrome_trace(trace, args.out)
    print(f"wrote {args.out} ({len(trace)} events) — load at chrome://tracing")
    return 0


def cmd_demo(args: argparse.Namespace) -> int:
    # Imported lazily: report rendering must not pull in scipy.
    from repro.apps.cg import build_chimney_problem, ppm_cg_solve
    from repro.config import franklin
    from repro.machine import Cluster
    from repro.obs.events import PhaseTrace

    trace = PhaseTrace()
    problem = build_chimney_problem(args.nx)
    result, elapsed = ppm_cg_solve(
        problem,
        Cluster(franklin(n_nodes=args.nodes)),
        max_iters=args.iters,
        tol=0.0,
        trace=trace,
    )
    report = RunReport.from_trace(trace)
    print(
        f"CG on {args.nodes} nodes: {result.iterations} iterations, "
        f"{elapsed * 1e3:.3f} ms simulated, {len(trace)} events"
    )
    print(format_report(report))
    if args.out:
        save_trace(trace, args.out)
        print(f"trace written to {args.out}")
    if args.chrome:
        save_chrome_trace(trace, args.chrome)
        print(f"chrome timeline written to {args.chrome}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="Render PPM observability reports from saved traces.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_report = sub.add_parser("report", help="per-phase metrics table")
    p_report.add_argument("trace", help="trace file (ppm-trace JSON)")
    p_report.add_argument(
        "--json", action="store_true", help="emit the report as JSON"
    )
    p_report.set_defaults(func=cmd_report)

    p_chrome = sub.add_parser(
        "chrome", help="convert a trace to Chrome trace_event JSON"
    )
    p_chrome.add_argument("trace", help="trace file (ppm-trace JSON)")
    p_chrome.add_argument(
        "-o", "--out", required=True, help="output chrome trace path"
    )
    p_chrome.set_defaults(func=cmd_chrome)

    p_demo = sub.add_parser(
        "demo", help="run the CG app with tracing and save the trace"
    )
    p_demo.add_argument("--nodes", type=int, default=4)
    p_demo.add_argument("--nx", type=int, default=8, help="grid edge (nx*nx*2nx rows)")
    p_demo.add_argument("--iters", type=int, default=10)
    p_demo.add_argument("--out", help="write the ppm-trace JSON here")
    p_demo.add_argument("--chrome", help="write the chrome trace_event JSON here")
    p_demo.set_defaults(func=cmd_demo)
    return parser


def main(argv: list[str]) -> int:
    try:
        args = build_parser().parse_args(argv)
        return args.func(args)
    except SystemExit as exc:  # argparse / _load exit 2 on bad input
        return int(exc.code or 0)


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
