"""Trace persistence and rendering: JSON trace files, Chrome
``trace_event`` timelines and plain-text per-phase report tables.

Trace-file schema (version 1; see docs/OBSERVABILITY.md)::

    {"schema": "ppm-trace", "version": 1,
     "events": [{"event": "phase_begin", "phase": 0, ...}, ...]}

``save_trace``/``load_trace`` round-trip losslessly;
``chrome_trace`` emits the Chrome/Perfetto ``trace_event`` JSON array
format (load the file at chrome://tracing or https://ui.perfetto.dev).
"""

from __future__ import annotations

import json

from repro.obs.events import (
    MessageSend,
    PhaseCommit,
    PhaseTrace,
    event_from_dict,
)
from repro.obs.metrics import RunReport

SCHEMA_NAME = "ppm-trace"
SCHEMA_VERSION = 1

#: Simulated seconds -> trace_event microseconds.
_US = 1e6


# ----------------------------------------------------------------------
# Trace files
# ----------------------------------------------------------------------

def trace_to_dict(trace) -> dict:
    """JSON-ready dict of a trace (any iterable of events)."""
    return {
        "schema": SCHEMA_NAME,
        "version": SCHEMA_VERSION,
        "events": [ev.to_dict() for ev in trace],
    }


def save_trace(trace, path: str) -> None:
    """Write a trace to ``path`` in the versioned JSON schema."""
    with open(path, "w") as fh:
        json.dump(trace_to_dict(trace), fh, indent=1)
        fh.write("\n")


def load_trace(path: str) -> PhaseTrace:
    """Load a trace file saved by :func:`save_trace`."""
    with open(path) as fh:
        payload = json.load(fh)
    if payload.get("schema") != SCHEMA_NAME:
        raise ValueError(
            f"{path}: not a {SCHEMA_NAME} file (schema={payload.get('schema')!r})"
        )
    if payload.get("version") != SCHEMA_VERSION:
        raise ValueError(
            f"{path}: unsupported trace version {payload.get('version')!r} "
            f"(this reader understands {SCHEMA_VERSION})"
        )
    trace = PhaseTrace()
    for d in payload.get("events", []):
        trace.emit(event_from_dict(d))
    if trace.events:
        trace.phase = max(ev.phase for ev in trace.events)
    return trace


# ----------------------------------------------------------------------
# Chrome trace_event export
# ----------------------------------------------------------------------

def chrome_trace(events) -> dict:
    """Convert a trace to the Chrome ``trace_event`` JSON format.

    Layout: one process per node (pid = node id + 1, named
    ``node N``), whose timeline shows each phase's node slice split
    into ``compute``, ``commit``, ``exposed comm`` (communication not
    hidden under computation) and ``barrier wait`` duration events;
    wire transfers appear as instant events on the sending node's
    row.  Process 0 (``cluster``) carries per-phase counter tracks
    for bundled messages and bytes moved.  Times are simulated
    microseconds.
    """
    out: list[dict] = []
    seen_nodes: set[int] = set()

    def meta(pid: int, name: str) -> None:
        out.append(
            {
                "name": "process_name",
                "ph": "M",
                "pid": pid,
                "tid": 0,
                "args": {"name": name},
            }
        )

    def slice_ev(pid: int, name: str, ts: float, dur: float, args: dict) -> None:
        out.append(
            {
                "name": name,
                "cat": "ppm",
                "ph": "X",
                "pid": pid,
                "tid": 0,
                "ts": ts * _US,
                "dur": dur * _US,
                "args": args,
            }
        )

    meta(0, "cluster")
    for ev in events:
        if isinstance(ev, PhaseCommit):
            label = f"phase {ev.phase} ({ev.phase_kind})"
            for ns in ev.nodes:
                pid = ns.node + 1
                if ns.node not in seen_nodes:
                    seen_nodes.add(ns.node)
                    meta(pid, f"node {ns.node}")
                busy = ns.compute + ns.commit_cpu + ns.comm - ns.overlapped
                if busy <= 0 and ns.wait <= 0:
                    continue
                t = ns.t0
                common = {"phase": ev.phase, "kind": ev.phase_kind}
                if ns.compute > 0:
                    slice_ev(pid, f"{label}: compute", t, ns.compute, common)
                    t += ns.compute
                if ns.commit_cpu > 0:
                    slice_ev(pid, f"{label}: commit", t, ns.commit_cpu, common)
                    t += ns.commit_cpu
                exposed = ns.comm - ns.overlapped
                if exposed > 0:
                    slice_ev(
                        pid,
                        f"{label}: exposed comm",
                        t,
                        exposed,
                        {**common, "comm_s": ns.comm, "overlapped_s": ns.overlapped},
                    )
                    t += exposed
                if ns.wait > 0:
                    slice_ev(pid, f"{label}: barrier wait", ns.arrival, ns.wait, common)
            for counter, value in (
                ("bundled messages", ev.messages),
                ("bytes moved", ev.nbytes),
            ):
                out.append(
                    {
                        "name": counter,
                        "ph": "C",
                        "pid": 0,
                        "tid": 0,
                        "ts": ev.t_end * _US,
                        "args": {counter: value},
                    }
                )
        elif isinstance(ev, MessageSend):
            out.append(
                {
                    "name": f"{ev.purpose} {ev.src}->{ev.dst}",
                    "cat": "ppm.net",
                    "ph": "i",
                    "s": "p",
                    "pid": ev.src + 1,
                    "tid": 0,
                    # Placed at commit time resolution: instant events
                    # carry traffic args, the slices carry the timing.
                    "ts": 0.0,
                    "args": {
                        "phase": ev.phase,
                        "variable": ev.variable,
                        "messages": ev.messages,
                        "nbytes": ev.nbytes,
                    },
                }
            )
    # Give message instants real timestamps now that commit times are
    # known: place each at its phase's commit end.
    ends = {
        ev.phase: ev.t_end for ev in events if isinstance(ev, PhaseCommit)
    }
    for entry in out:
        if entry.get("cat") == "ppm.net":
            entry["ts"] = ends.get(entry["args"]["phase"], 0.0) * _US
    return {"traceEvents": out, "displayTimeUnit": "ms"}


def save_chrome_trace(events, path: str) -> None:
    """Write a Chrome-loadable ``trace_event`` JSON file."""
    with open(path, "w") as fh:
        json.dump(chrome_trace(events), fh, indent=1)
        fh.write("\n")


# ----------------------------------------------------------------------
# Plain-text report
# ----------------------------------------------------------------------

def _fmt_ms(seconds: float) -> str:
    return f"{seconds * 1e3:.4f}"


def _fmt_ratio(value: float | None) -> str:
    return "-" if value is None else f"{value:.1f}"


def format_report(report: RunReport) -> str:
    """Aligned per-phase table plus run totals for a
    :class:`~repro.obs.metrics.RunReport`."""
    headers = [
        "phase",
        "kind",
        "dur_ms",
        "vps",
        "work_ms",
        "comm_ms",
        "ovl%",
        "msgs",
        "unbundled",
        "ratio",
        "bytes",
        "skew_us",
    ]
    rows = []
    for p in report.phases:
        rows.append(
            [
                str(p.phase),
                p.kind,
                _fmt_ms(p.duration),
                str(p.vp_count),
                _fmt_ms(p.vp_work),
                _fmt_ms(p.comm),
                f"{100 * p.overlap_fraction:.0f}",
                str(p.messages),
                str(p.unbundled_messages),
                _fmt_ratio(p.bundling_ratio),
                f"{p.bytes_moved:.0f}",
                f"{p.barrier_skew * 1e6:.2f}",
            ]
        )
    widths = [
        max(len(h), *(len(r[i]) for r in rows)) if rows else len(h)
        for i, h in enumerate(headers)
    ]
    lines = ["== ppm run report =="]
    lines.append("  ".join(h.rjust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for r in rows:
        lines.append("  ".join(v.rjust(w) for v, w in zip(r, widths)))
    lines.append("")
    lines.append(
        f"phases: {len(report.phases)}   "
        f"elapsed: {_fmt_ms(report.elapsed)} ms   "
        f"vp work: {_fmt_ms(report.total_vp_work)} ms"
    )
    lines.append(
        f"messages: {report.total_messages} bundled / "
        f"{report.unbundled_messages} unbundled "
        f"(ratio {_fmt_ratio(report.bundling_ratio)})   "
        f"bytes: {report.total_bytes:.0f}"
    )
    lines.append(
        f"overlap: {100 * report.overlap_fraction:.1f}% of comm hidden   "
        f"max barrier skew: {report.max_barrier_skew * 1e6:.2f} us"
    )
    rs = report.resilience
    if rs is not None:
        # Section appears only for runs with resilience events, so
        # fault-free report output is byte-identical to earlier versions.
        lines.append(
            f"faults: {rs.faults} injected "
            f"({rs.stragglers} straggler, {rs.duplicates} duplicate)   "
            f"retries: {rs.retries}"
        )
        lines.append(
            f"checkpoints: {rs.checkpoints} "
            f"({rs.checkpoint_bytes} bytes, {_fmt_ms(rs.checkpoint_time)} ms)   "
            f"recoveries: {rs.recoveries} "
            f"(downtime {_fmt_ms(rs.recovery_time)} ms, "
            f"lost work {_fmt_ms(rs.lost_work)} ms)"
        )
        lines.append(
            f"resilience overhead: "
            f"{100 * rs.overhead(report.elapsed):.1f}% of elapsed"
        )
    zm = report.zero_merge
    if zm is not None:
        # Section appears only when rounds committed worker-side, so
        # inline and record-shipping output stays byte-identical.
        lines.append(
            f"zero-merge commits: {zm.commits} ({zm.ops} ops in place)   "
            f"plan cache: {zm.plan_hits} hits / {zm.plan_misses} misses "
            f"({100 * zm.plan_hit_rate:.0f}%)   "
            f"merge bytes avoided: {zm.bytes_avoided}"
        )
    sv = report.supervision
    if sv is not None:
        # Section appears only when the supervisor intervened, so
        # fault-free supervised output stays byte-identical too.
        lines.append(
            f"worker failures: {sv.failures} "
            f"({sv.crashes} crash, {sv.hangs} hang, {sv.corrupt} corrupt)   "
            f"respawns: {sv.respawns}   replayed rounds: "
            f"{sv.replayed_rounds}"
        )
        lines.append(
            f"degradations: {sv.degradations}   "
            f"recovery time: {_fmt_ms(sv.recovery_host_s)} ms host"
        )
    if report.workers is not None:
        # Section appears only for process-backend runs, so inline
        # report output stays byte-identical to earlier versions.
        lines.append("")
        lines.append("-- worker utilization (host wall-clock) --")
        wh = ["worker", "rounds", "vps", "busy_ms", "util%"]
        wrows = [
            [
                str(w.worker),
                str(w.rounds),
                str(w.vps),
                _fmt_ms(w.busy_s),
                f"{100 * w.utilization:.0f}",
            ]
            for w in report.workers
        ]
        wwidths = [
            max(len(h), *(len(r[i]) for r in wrows)) if wrows else len(h)
            for i, h in enumerate(wh)
        ]
        lines.append("  ".join(h.rjust(w) for h, w in zip(wh, wwidths)))
        for r in wrows:
            lines.append("  ".join(v.rjust(w) for v, w in zip(r, wwidths)))
    return "\n".join(lines)


def report_to_dict(report: RunReport) -> dict:
    """JSON-ready dict of a report (per-phase rows plus totals)."""
    return {
        "phases": [
            {
                "phase": p.phase,
                "kind": p.kind,
                "duration_s": p.duration,
                "vp_count": p.vp_count,
                "vp_work_s": p.vp_work,
                "compute_s": p.compute,
                "commit_cpu_s": p.commit_cpu,
                "comm_s": p.comm,
                "overlapped_s": p.overlapped,
                "overlap_fraction": p.overlap_fraction,
                "access_ops": p.access_ops,
                "raw_elems": p.raw_elems,
                "unbundled_messages": p.unbundled_messages,
                "messages": p.messages,
                "bundling_ratio": p.bundling_ratio,
                "bytes_moved": p.bytes_moved,
                "barrier_skew_s": p.barrier_skew,
                "barrier_cost_s": p.barrier_cost,
                "collectives": p.collectives,
            }
            for p in report.phases
        ],
        "totals": {
            "elapsed_s": report.elapsed,
            "vp_work_s": report.total_vp_work,
            "messages": report.total_messages,
            "unbundled_messages": report.unbundled_messages,
            "bundling_ratio": report.bundling_ratio,
            "bytes": report.total_bytes,
            "overlap_fraction": report.overlap_fraction,
            "max_barrier_skew_s": report.max_barrier_skew,
        },
        # Key present only for runs with resilience events, keeping the
        # fault-free JSON schema unchanged.
        **(
            {
                "resilience": {
                    "faults": report.resilience.faults,
                    "retries": report.resilience.retries,
                    "duplicates": report.resilience.duplicates,
                    "stragglers": report.resilience.stragglers,
                    "checkpoints": report.resilience.checkpoints,
                    "checkpoint_bytes": report.resilience.checkpoint_bytes,
                    "checkpoint_time_s": report.resilience.checkpoint_time,
                    "recoveries": report.resilience.recoveries,
                    "recovery_time_s": report.resilience.recovery_time,
                    "lost_work_s": report.resilience.lost_work,
                    "overhead_fraction": report.resilience.overhead(
                        report.elapsed
                    ),
                }
            }
            if report.resilience is not None
            else {}
        ),
        # Same pattern for the zero-merge commit summary.
        **(
            {
                "zero_merge": {
                    "commits": report.zero_merge.commits,
                    "ops": report.zero_merge.ops,
                    "plan_hits": report.zero_merge.plan_hits,
                    "plan_misses": report.zero_merge.plan_misses,
                    "plan_hit_rate": report.zero_merge.plan_hit_rate,
                    "bytes_avoided": report.zero_merge.bytes_avoided,
                }
            }
            if report.zero_merge is not None
            else {}
        ),
        # Same pattern for the worker-supervision summary.
        **(
            {
                "supervision": {
                    "crashes": report.supervision.crashes,
                    "hangs": report.supervision.hangs,
                    "corrupt": report.supervision.corrupt,
                    "failures": report.supervision.failures,
                    "respawns": report.supervision.respawns,
                    "replayed_rounds": report.supervision.replayed_rounds,
                    "degradations": report.supervision.degradations,
                    "recovery_host_s": report.supervision.recovery_host_s,
                }
            }
            if report.supervision is not None
            else {}
        ),
        # Same pattern for the process-backend worker table.
        **(
            {
                "workers": [
                    {
                        "worker": w.worker,
                        "rounds": w.rounds,
                        "vps": w.vps,
                        "busy_s": w.busy_s,
                        "utilization": w.utilization,
                    }
                    for w in report.workers
                ]
            }
            if report.workers is not None
            else {}
        ),
    }
