"""Per-phase metrics aggregation: events in, :class:`RunReport` out.

Metric definitions (the formulas are normative; docs/OBSERVABILITY.md
restates them with worked examples):

* **vp_work** — sum of :class:`~repro.obs.events.VpScheduled` costs:
  total simulated CPU seconds spent inside VP bodies.
* **bytes_moved** — sum of ``MessageSend.nbytes`` (equal to the
  ``MessageRecv`` sum by construction; the report validates this).
* **messages** — bundled wire messages (sum of
  ``MessageSend.messages``).
* **unbundled_messages** — sum of ``BundleFlushed.remote_elems``: the
  wire messages the same phase would issue with
  ``MachineConfig(bundling=False)`` (one message per deduplicated
  remote element).
* **bundling_ratio** — ``unbundled_messages / messages`` (``None``
  when the phase moved nothing).
* **overlap_fraction** — ``sum(overlapped) / sum(comm)`` over the
  phase's node slices: the fraction of communication time hidden
  under computation.  In ``[0, 1]`` because the runtime never
  overlaps more than the communication it has
  (:func:`repro.core.scheduler.compose_phase_timing`).
* **barrier_skew** — ``max(arrival) - min(arrival)`` over nodes that
  did work in the phase: how unevenly the nodes reached the barrier.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.obs.events import (
    BarrierWait,
    BundleFlushed,
    CheckpointTaken,
    Event,
    FaultInjected,
    MessageRecv,
    MessageSend,
    PhaseBegin,
    PhaseCommit,
    PoolDegraded,
    Recovery,
    RetryAttempt,
    RoundReplay,
    SnapshotPruned,
    VpScheduled,
    WorkerCrash,
    WorkerRespawn,
    WorkerSpan,
    ZeroMergeCommit,
)


@dataclass(frozen=True)
class ZeroMergeSummary:
    """Run-level aggregates of the zero-merge commit path (present on
    a :class:`RunReport` only when the trace carries
    :class:`~repro.obs.events.ZeroMergeCommit` events, i.e. the run
    used ``executor="process"`` with certified phases committing
    worker-side).

    * **commits** — phase groups committed in place by the workers.
    * **ops** — buffered operations those commits applied.
    * **plan_hits** / **plan_misses** — commit-plan cache outcomes
      (a hit reuses pre-lexsorted index buffers; a miss recompiles).
    * **bytes_avoided** — estimated reply bytes the shipped operation
      streams would have cost.
    """

    commits: int
    ops: int
    plan_hits: int
    plan_misses: int
    bytes_avoided: int

    @property
    def plan_hit_rate(self) -> float:
        """Plan-cache hits over all lookups (0.0 before any commit)."""
        total = self.plan_hits + self.plan_misses
        return self.plan_hits / total if total else 0.0


@dataclass(frozen=True)
class SnapshotPruningSummary:
    """Run-level aggregates of analysis-driven snapshot pruning
    (present on a :class:`RunReport` only when the trace carries
    :class:`~repro.obs.events.SnapshotPruned` events, i.e. the run
    used ``snapshot="pruned"`` and the liveness certificate let at
    least one commit skip its copy).

    * **phases** — phase commits where at least one target pruned.
    * **commits** — commit targets that committed in place.
    * **bytes_avoided** — snapshot-copy bytes those swaps would have
      moved.
    """

    phases: int
    commits: int
    bytes_avoided: int


@dataclass(frozen=True)
class WorkerUtilization:
    """Host-side utilization of one ``executor="process"`` worker
    (present on a :class:`RunReport` only when the trace carries
    :class:`~repro.obs.events.WorkerSpan` events, i.e. the run used the
    process backend with tracing on).

    * **rounds** — phase rounds the worker serviced.
    * **vps** — VP bodies it advanced across those rounds.
    * **busy_s** — real (host wall-clock) seconds spent inside round
      bodies; unlike every other duration in the report these are not
      simulated.
    * **utilization** — ``busy_s`` over the pool's critical path (the
      sum over rounds of the slowest worker's span): 1.0 means this
      worker was the bottleneck of every round, low values mean it
      mostly waited on its siblings at the round barrier.
    """

    worker: int
    rounds: int
    vps: int
    busy_s: float
    utilization: float


def _worker_table(spans: list[WorkerSpan]) -> tuple[WorkerUtilization, ...]:
    """Aggregate :class:`WorkerSpan` events into per-worker rows.

    Spans arrive round by round, each round in ascending worker order
    (the backend emits them from one loop), so a non-increasing worker
    id marks a round boundary.
    """
    per_worker: dict[int, list] = {}
    critical = 0.0
    round_max = 0.0
    prev_worker = None
    for ev in spans:
        if prev_worker is not None and ev.worker <= prev_worker:
            critical += round_max
            round_max = 0.0
        prev_worker = ev.worker
        round_max = max(round_max, ev.host_s)
        acc = per_worker.setdefault(ev.worker, [0, 0, 0.0])
        acc[0] += 1
        acc[1] += ev.vps
        acc[2] += ev.host_s
    critical += round_max
    return tuple(
        WorkerUtilization(
            worker=w,
            rounds=acc[0],
            vps=acc[1],
            busy_s=acc[2],
            utilization=acc[2] / critical if critical > 0 else 0.0,
        )
        for w, acc in sorted(per_worker.items())
    )


@dataclass(frozen=True)
class ResilienceSummary:
    """Run-level aggregates of the resilience event stream (present on
    a :class:`RunReport` only when the trace contains fault, retry,
    checkpoint or recovery events).

    * **faults** — injected fault occurrences
      (:class:`~repro.obs.events.FaultInjected` count: each dropped or
      corrupted attempt, delay, duplicate and straggler phase).
    * **retries** — bundle re-sends
      (:class:`~repro.obs.events.RetryAttempt` count).
    * **checkpoint_time** / **recovery detection+restore** /
      **lost_work** are the three components of the resilience
      overhead; ``overhead(elapsed)`` relates their sum to the run.
    """

    faults: int
    retries: int
    duplicates: int
    stragglers: int
    checkpoints: int
    checkpoint_bytes: int
    checkpoint_time: float
    recoveries: int
    recovery_time: float
    lost_work: float

    def overhead(self, elapsed: float) -> float:
        """Fraction of ``elapsed`` spent on checkpoints, recovery
        (detection + restore) and re-executed lost work."""
        if elapsed <= 0:
            return 0.0
        total = self.checkpoint_time + self.recovery_time + self.lost_work
        return total / elapsed


@dataclass(frozen=True)
class SupervisionSummary:
    """Run-level aggregates of the worker-supervision event stream
    (present on a :class:`RunReport` only when the trace carries
    :class:`~repro.obs.events.WorkerCrash`,
    :class:`~repro.obs.events.WorkerRespawn`,
    :class:`~repro.obs.events.RoundReplay` or
    :class:`~repro.obs.events.PoolDegraded` events, i.e. the run used
    ``run_ppm(..., supervision=...)`` and the supervisor actually
    intervened).

    * **crashes** / **hangs** / **corrupt** — detected worker failures
      by kind (closed pipe, reply-deadline overrun, undeserialisable
      reply).
    * **respawns** — replacement workers forked (and their init
      handshake completed).
    * **replayed_rounds** — phase-round commands re-executed to rebuild
      respawned shards' generator state.
    * **degradations** — pool restarts in a weaker configuration after
      an exhausted respawn budget.
    * **recovery_host_s** — real (host wall-clock) seconds spent inside
      recovery; like :class:`WorkerUtilization` durations, not
      simulated time.
    """

    crashes: int
    hangs: int
    corrupt: int
    respawns: int
    replayed_rounds: int
    degradations: int
    recovery_host_s: float

    @property
    def failures(self) -> int:
        """All detected worker failures, regardless of kind."""
        return self.crashes + self.hangs + self.corrupt


@dataclass(frozen=True)
class PhaseReport:
    """Aggregated metrics of one committed phase."""

    phase: int
    kind: str
    t_begin: float
    t_end: float
    vp_count: int
    vp_work: float
    compute: float  # critical-path (max-over-nodes) compute seconds
    commit_cpu: float
    comm: float
    overlapped: float
    access_ops: int
    raw_elems: int
    unbundled_messages: int
    messages: int
    bytes_moved: float
    barrier_skew: float
    barrier_cost: float
    collectives: int

    @property
    def duration(self) -> float:
        """Simulated seconds from phase entry to barrier exit."""
        return self.t_end - self.t_begin

    @property
    def overlap_fraction(self) -> float:
        """Fraction of communication hidden under computation."""
        return self.overlapped / self.comm if self.comm > 0 else 0.0

    @property
    def bundling_ratio(self) -> float | None:
        """Unbundled over bundled message count (None without traffic)."""
        if self.messages == 0:
            return None
        return self.unbundled_messages / self.messages


@dataclass(frozen=True)
class RunReport:
    """Run-level metrics report: one :class:`PhaseReport` per
    committed phase plus whole-run aggregates.

    Build with :meth:`from_trace`; render with
    :func:`repro.obs.export.format_report` or ``python -m repro.obs
    report <trace.json>``.
    """

    phases: tuple[PhaseReport, ...]
    resilience: ResilienceSummary | None = None
    """Aggregates of the resilience event stream; None for a run
    without fault injection, checkpointing or recovery."""
    workers: tuple[WorkerUtilization, ...] | None = None
    """Per-worker utilization of the ``executor="process"`` pool
    (aggregated :class:`~repro.obs.events.WorkerSpan` events); None for
    inline runs."""
    zero_merge: ZeroMergeSummary | None = None
    """Aggregates of the zero-merge commit path (aggregated
    :class:`~repro.obs.events.ZeroMergeCommit` events); None when no
    round committed worker-side."""
    snapshot_pruning: SnapshotPruningSummary | None = None
    """Aggregates of analysis-driven snapshot pruning (aggregated
    :class:`~repro.obs.events.SnapshotPruned` events); None when no
    commit pruned its copy."""
    supervision: SupervisionSummary | None = None
    """Aggregates of the worker-supervision event stream (crashes,
    respawns, replays, degradations); None when the supervisor never
    intervened."""

    # -- construction --------------------------------------------------
    @classmethod
    def from_events(cls, events: list[Event]) -> "RunReport":
        """Aggregate a flat event list into per-phase reports.

        Only phases with a :class:`PhaseCommit` appear (a run aborted
        mid-phase contributes its completed phases only).
        """
        begins: dict[int, PhaseBegin] = {}
        commits: dict[int, PhaseCommit] = {}
        acc: dict[int, dict] = {}
        res = {
            "faults": 0,
            "retries": 0,
            "duplicates": 0,
            "stragglers": 0,
            "checkpoints": 0,
            "checkpoint_bytes": 0,
            "checkpoint_time": 0.0,
            "recoveries": 0,
            "recovery_time": 0.0,
            "lost_work": 0.0,
        }
        saw_resilience = False
        spans: list[WorkerSpan] = []
        zm = {"commits": 0, "ops": 0, "plan_hits": 0, "plan_misses": 0,
              "bytes_avoided": 0}
        pruned = {"phases": 0, "commits": 0, "bytes_avoided": 0}
        sup = {"crashes": 0, "hangs": 0, "corrupt": 0, "respawns": 0,
               "replayed_rounds": 0, "degradations": 0,
               "recovery_host_s": 0.0}
        saw_supervision = False

        def bucket(phase: int) -> dict:
            if phase not in acc:
                acc[phase] = {
                    "vp_count": 0,
                    "vp_work": 0.0,
                    "access_ops": 0,
                    "raw_elems": 0,
                    "unbundled": 0,
                    "sent_msgs": 0,
                    "sent_bytes": 0,
                    "recv_bytes": 0,
                    "barrier_cost": 0.0,
                }
            return acc[phase]

        for ev in events:
            if isinstance(ev, PhaseBegin):
                begins[ev.phase] = ev
            elif isinstance(ev, PhaseCommit):
                commits[ev.phase] = ev
            elif isinstance(ev, VpScheduled):
                b = bucket(ev.phase)
                b["vp_count"] += 1
                b["vp_work"] += ev.cost
            elif isinstance(ev, BundleFlushed):
                b = bucket(ev.phase)
                b["access_ops"] += ev.raw_ops
                b["raw_elems"] += ev.raw_elems
                b["unbundled"] += ev.remote_elems
            elif isinstance(ev, MessageSend):
                b = bucket(ev.phase)
                b["sent_msgs"] += ev.messages
                b["sent_bytes"] += ev.nbytes
            elif isinstance(ev, MessageRecv):
                bucket(ev.phase)["recv_bytes"] += ev.nbytes
            elif isinstance(ev, BarrierWait):
                bucket(ev.phase)["barrier_cost"] += ev.duration
            elif isinstance(ev, FaultInjected):
                saw_resilience = True
                res["faults"] += 1
                if ev.fault == "duplicate":
                    res["duplicates"] += 1
                elif ev.fault == "straggler":
                    res["stragglers"] += 1
            elif isinstance(ev, RetryAttempt):
                saw_resilience = True
                res["retries"] += 1
            elif isinstance(ev, CheckpointTaken):
                saw_resilience = True
                res["checkpoints"] += 1
                res["checkpoint_bytes"] += ev.nbytes
                res["checkpoint_time"] += ev.duration
            elif isinstance(ev, Recovery):
                saw_resilience = True
                res["recoveries"] += 1
                res["recovery_time"] += ev.t_resume - ev.t_crash
                res["lost_work"] += ev.lost_work
            elif isinstance(ev, WorkerSpan):
                spans.append(ev)
            elif isinstance(ev, ZeroMergeCommit):
                zm["commits"] += 1
                zm["ops"] += ev.ops
                zm["plan_hits"] += ev.plan_hits
                zm["plan_misses"] += ev.plan_misses
                zm["bytes_avoided"] += ev.bytes_avoided
            elif isinstance(ev, SnapshotPruned):
                pruned["phases"] += 1
                pruned["commits"] += ev.commits
                pruned["bytes_avoided"] += ev.bytes_avoided
            elif isinstance(ev, WorkerCrash):
                saw_supervision = True
                if ev.failure == "hang":
                    sup["hangs"] += 1
                elif ev.failure == "corrupt-reply":
                    sup["corrupt"] += 1
                else:
                    sup["crashes"] += 1
            elif isinstance(ev, WorkerRespawn):
                saw_supervision = True
                sup["respawns"] += 1
                sup["recovery_host_s"] += ev.host_s
            elif isinstance(ev, RoundReplay):
                saw_supervision = True
                sup["replayed_rounds"] += ev.rounds
                sup["recovery_host_s"] += ev.host_s
            elif isinstance(ev, PoolDegraded):
                saw_supervision = True
                sup["degradations"] += 1

        reports = []
        for phase in sorted(commits):
            commit = commits[phase]
            b = bucket(phase)
            if b["sent_bytes"] != b["recv_bytes"]:
                raise ValueError(
                    f"phase {phase}: trace violates byte conservation "
                    f"(sent {b['sent_bytes']} != received {b['recv_bytes']})"
                )
            # Nodes that did any work this phase; arrivals of idle
            # nodes (zero busy time) would understate the real skew.
            active = [
                ns
                for ns in commit.nodes
                if ns.compute or ns.comm or ns.commit_cpu
            ]
            arrivals = [ns.arrival for ns in (active or commit.nodes)]
            begin = begins.get(phase)
            reports.append(
                PhaseReport(
                    phase=phase,
                    kind=commit.phase_kind,
                    t_begin=begin.t if begin is not None else commit.t,
                    t_end=commit.t_end,
                    vp_count=b["vp_count"],
                    vp_work=b["vp_work"],
                    compute=max((ns.compute for ns in commit.nodes), default=0.0),
                    commit_cpu=sum(ns.commit_cpu for ns in commit.nodes),
                    comm=sum(ns.comm for ns in commit.nodes),
                    overlapped=sum(ns.overlapped for ns in commit.nodes),
                    access_ops=b["access_ops"],
                    raw_elems=b["raw_elems"],
                    unbundled_messages=b["unbundled"],
                    messages=b["sent_msgs"],
                    bytes_moved=float(b["sent_bytes"]),
                    barrier_skew=max(arrivals) - min(arrivals) if arrivals else 0.0,
                    barrier_cost=b["barrier_cost"],
                    collectives=commit.collectives,
                )
            )
        return cls(
            phases=tuple(reports),
            resilience=ResilienceSummary(**res) if saw_resilience else None,
            workers=_worker_table(spans) if spans else None,
            zero_merge=ZeroMergeSummary(**zm) if zm["commits"] else None,
            snapshot_pruning=(
                SnapshotPruningSummary(**pruned) if pruned["commits"] else None
            ),
            supervision=SupervisionSummary(**sup) if saw_supervision else None,
        )

    @classmethod
    def from_trace(cls, trace) -> "RunReport":
        """Aggregate a :class:`~repro.obs.events.PhaseTrace`."""
        return cls.from_events(list(trace.events))

    # -- run-level aggregates ------------------------------------------
    @property
    def elapsed(self) -> float:
        """Simulated end time of the last committed phase."""
        return max((p.t_end for p in self.phases), default=0.0)

    @property
    def total_vp_work(self) -> float:
        return sum(p.vp_work for p in self.phases)

    @property
    def total_messages(self) -> int:
        """Bundled wire messages across the run."""
        return sum(p.messages for p in self.phases)

    @property
    def total_bytes(self) -> float:
        return sum(p.bytes_moved for p in self.phases)

    @property
    def access_ops(self) -> int:
        """Fine-grained shared-access calls recorded at commits."""
        return sum(p.access_ops for p in self.phases)

    @property
    def unbundled_messages(self) -> int:
        """Wire messages a bundling-disabled runtime would have paid."""
        return sum(p.unbundled_messages for p in self.phases)

    @property
    def bundling_ratio(self) -> float | None:
        """Run-level unbundled/bundled message ratio."""
        if self.total_messages == 0:
            return None
        return self.unbundled_messages / self.total_messages

    @property
    def overlap_fraction(self) -> float:
        """Comm-weighted overlap fraction across all phases."""
        comm = sum(p.comm for p in self.phases)
        if comm <= 0:
            return 0.0
        return sum(p.overlapped for p in self.phases) / comm

    @property
    def max_barrier_skew(self) -> float:
        return max((p.barrier_skew for p in self.phases), default=0.0)

    def phase(self, index: int) -> PhaseReport:
        """Fetch one phase report by execution index."""
        for p in self.phases:
            if p.phase == index:
                return p
        raise KeyError(f"no committed phase with index {index}")
