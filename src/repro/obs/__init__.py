"""Observability for PPM runs: phase-level tracing, runtime metrics
and report/timeline exporters.

Enable tracing per run and read the report back::

    ppm, result = run_ppm(main, cluster, trace=True)
    report = ppm.report()              # RunReport: per-phase metrics
    print(report.bundling_ratio)      # unbundled / bundled messages

Persist and render traces::

    from repro.obs import save_trace, save_chrome_trace, format_report
    save_trace(ppm.tracer, "run.trace.json")      # versioned JSON schema
    save_chrome_trace(ppm.tracer, "run.chrome.json")  # chrome://tracing
    print(format_report(report))                  # per-phase text table

Or from the command line (``python -m repro.obs --help``)::

    python -m repro.obs demo --out cg.trace.json   # record a CG trace
    python -m repro.obs report cg.trace.json       # per-phase table
    python -m repro.obs chrome cg.trace.json -o cg.chrome.json

Event taxonomy, metric formulas and the trace-file schema are
documented in docs/OBSERVABILITY.md; docs/ARCHITECTURE.md places this
subsystem in the repository map.
"""

from repro.obs.events import (
    EVENT_TYPES,
    BarrierWait,
    BundleFlushed,
    CheckpointTaken,
    Event,
    EventBus,
    FaultInjected,
    MessageRecv,
    MessageSend,
    NodeSlice,
    PhaseBegin,
    PhaseCommit,
    PhaseTrace,
    PoolDegraded,
    Recovery,
    RetryAttempt,
    RoundReplay,
    SnapshotPruned,
    VpScheduled,
    WorkerCrash,
    WorkerRespawn,
    WorkerSpan,
    ZeroMergeCommit,
    event_from_dict,
)
from repro.obs.export import (
    chrome_trace,
    format_report,
    load_trace,
    report_to_dict,
    save_chrome_trace,
    save_trace,
    trace_to_dict,
)
from repro.obs.metrics import (
    PhaseReport,
    ResilienceSummary,
    RunReport,
    SnapshotPruningSummary,
    SupervisionSummary,
    WorkerUtilization,
    ZeroMergeSummary,
)

__all__ = [
    "EVENT_TYPES",
    "BarrierWait",
    "BundleFlushed",
    "CheckpointTaken",
    "Event",
    "EventBus",
    "FaultInjected",
    "MessageRecv",
    "MessageSend",
    "NodeSlice",
    "PhaseBegin",
    "PhaseCommit",
    "PhaseReport",
    "PhaseTrace",
    "PoolDegraded",
    "Recovery",
    "ResilienceSummary",
    "RetryAttempt",
    "RoundReplay",
    "RunReport",
    "SnapshotPruned",
    "SnapshotPruningSummary",
    "SupervisionSummary",
    "VpScheduled",
    "WorkerCrash",
    "WorkerRespawn",
    "WorkerSpan",
    "WorkerUtilization",
    "ZeroMergeCommit",
    "ZeroMergeSummary",
    "chrome_trace",
    "event_from_dict",
    "format_report",
    "load_trace",
    "report_to_dict",
    "save_chrome_trace",
    "save_trace",
    "trace_to_dict",
]
