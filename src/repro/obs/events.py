"""The observability event model: typed events and the event bus.

This module is the foundation of :mod:`repro.obs` and deliberately has
no dependencies on the rest of the package, so every layer — the PPM
runtime (:mod:`repro.core.runtime`), the per-phase recorder
(:mod:`repro.core.phase`), the bundling engine
(:mod:`repro.core.bundling`), the timing composer
(:mod:`repro.core.scheduler`) and the network model
(:mod:`repro.machine.network`) — can emit events without import cycles.

Event taxonomy (full field reference in docs/OBSERVABILITY.md):

=================  =======================  =============================
Event              Emitted from             One per
=================  =======================  =============================
`PhaseBegin`       core/runtime.py          phase, before its bodies run
`VpScheduled`      core/phase.py            VP resumed in a phase round
`BundleFlushed`    core/bundling.py         (node, variable, direction)
`MessageSend`      core/scheduler.py        wire transfer leaving a node
`MessageRecv`      core/scheduler.py        wire transfer arriving
`BarrierWait`      machine/network.py       phase-closing synchronisation
`PhaseCommit`      core/runtime.py          phase, after its barrier
`WorkerSpan`       parallel/backend.py      (phase round, worker process)
`ZeroMergeCommit`  parallel/backend.py      phase group committed in place
`WorkerCrash`      parallel/supervisor.py   worker failure detected
`WorkerRespawn`    parallel/supervisor.py   worker process respawned
`RoundReplay`      parallel/supervisor.py   respawned worker caught up
`PoolDegraded`     parallel/supervisor.py   pool degraded after budget
`FaultInjected`    resilience/manager.py    fault the injector fired
`RetryAttempt`     resilience/retry.py      re-sent bundle flight
`CheckpointTaken`  resilience/checkpoint.py coordinated checkpoint
`Recovery`         resilience/manager.py    crash rolled back + resumed
=================  =======================  =============================

Instrumented sites are gated behind a single ``tracer is not None``
predicate, so the untraced default path pays one pointer test per site
and nothing else; traced and untraced runs produce bitwise-identical
committed results and identical simulated times (tested in
``tests/obs/test_metrics.py``).
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, fields
from typing import ClassVar, Iterator


@dataclass(frozen=True)
class Event:
    """Base of all observability events; ``phase`` is the 0-based
    execution index of the phase the event belongs to (global and node
    phases share one counter, in commit order)."""

    kind: ClassVar[str] = "event"

    phase: int

    def to_dict(self) -> dict:
        """JSON-ready dict (adds the ``event`` discriminator field)."""
        d = asdict(self)
        d["event"] = self.kind
        return d


@dataclass(frozen=True)
class PhaseBegin(Event):
    """A phase is about to execute its VP bodies.

    ``t`` is the earliest participating node clock at entry; ``vps``
    counts the VPs that will be resumed; ``nodes`` lists the
    participating node ids.
    """

    kind: ClassVar[str] = "phase_begin"

    phase_kind: str
    latency_rounds: int
    vps: int
    nodes: tuple[int, ...]
    t: float


@dataclass(frozen=True)
class VpScheduled(Event):
    """One VP was resumed for one phase round on one core.

    ``cost`` is the simulated CPU seconds its body accrued (work,
    memory accesses and shared-access software overhead).
    """

    kind: ClassVar[str] = "vp_scheduled"

    node: int
    core: int
    vp: int
    cost: float


@dataclass(frozen=True)
class BundleFlushed(Event):
    """The commit-time bundling engine aggregated one node's recorded
    fine-grained accesses to one shared variable in one direction.

    ``raw_ops`` counts the fine-grained access calls; ``raw_elems``
    the elements they addressed (with repetition); ``unique_elems``
    the deduplicated footprint the runtime actually moves, split into
    ``local_elems`` (owner-local, no wire traffic) and
    ``remote_elems`` across ``peers`` owning nodes.  ``remote_elems``
    is exactly the wire-message count a bundling-disabled runtime
    would pay (one message per element), so
    ``remote_elems / bundled messages`` is the phase's bundling ratio.
    """

    kind: ClassVar[str] = "bundle_flushed"

    node: int
    variable: str
    direction: str  # "read" | "write"
    raw_ops: int
    raw_elems: int
    unique_elems: int
    local_elems: int
    remote_elems: int
    peers: int


@dataclass(frozen=True)
class MessageSend(Event):
    """A bundled wire transfer left node ``src`` toward node ``dst``.

    ``purpose`` is ``read_request`` (index bundle), ``read_reply``
    (dense data bundle) or ``write_bundle`` (indexed data bundle).
    Every ``MessageSend`` is paired with a ``MessageRecv`` carrying
    identical counts, so per-phase bytes are conserved by
    construction — an invariant the schema tests pin down.
    """

    kind: ClassVar[str] = "message_send"

    src: int
    dst: int
    variable: str
    purpose: str
    messages: int
    nbytes: int


@dataclass(frozen=True)
class MessageRecv(Event):
    """The receiving half of a :class:`MessageSend` (same fields)."""

    kind: ClassVar[str] = "message_recv"

    src: int
    dst: int
    variable: str
    purpose: str
    messages: int
    nbytes: int


@dataclass(frozen=True)
class BarrierWait(Event):
    """The phase-closing synchronisation was charged.

    ``scope`` is ``cluster`` (global phase: all nodes) or ``node``
    (node phase: one node's cores); ``fused`` is true when the phase
    carried collectives and the reduction was fused into the barrier
    tree (an allreduce sweep instead of a plain barrier).
    Per-node wait times live in :class:`PhaseCommit` node slices.
    """

    kind: ClassVar[str] = "barrier_wait"

    scope: str
    participants: int
    duration: float
    fused: bool


@dataclass(frozen=True)
class NodeSlice:
    """One node's timing slice of one committed phase (nested inside
    :class:`PhaseCommit`).  ``arrival = t0 + busy`` is when the node
    reached the barrier; ``wait = t_end - arrival`` its barrier wait
    (synchronisation cost included); the spread of arrivals across
    nodes is the phase's barrier skew."""

    node: int
    t0: float
    compute: float
    commit_cpu: float
    comm: float
    overlapped: float
    arrival: float
    wait: float


@dataclass(frozen=True)
class PhaseCommit(Event):
    """A phase committed: writes applied, collectives resolved,
    clocks merged to ``t_end``.  ``messages``/``nbytes`` are the
    bundled wire totals of the phase; ``nodes`` carries one
    :class:`NodeSlice` per cluster node."""

    kind: ClassVar[str] = "phase_commit"

    phase_kind: str
    latency_rounds: int
    t: float
    t_end: float
    messages: int
    nbytes: int
    collectives: int
    nodes: tuple[NodeSlice, ...]


@dataclass(frozen=True)
class WorkerSpan(Event):
    """One worker process serviced one phase round of the
    ``executor="process"`` backend.

    ``phase`` is the index of the first phase of the round (a node
    round runs all concurrently-ready node phases in one dispatch);
    ``vps`` counts the VP bodies the worker advanced; ``host_s`` is
    *host* wall-clock seconds the worker spent on the round — real
    time, unlike every other duration in the trace, which is simulated.
    The per-worker utilization table of
    :class:`~repro.obs.metrics.RunReport` aggregates these."""

    kind: ClassVar[str] = "worker_span"

    worker: int
    vps: int
    host_s: float


@dataclass(frozen=True)
class ZeroMergeCommit(Event):
    """One phase group of a certified round committed worker-side
    (the zero-merge path of the ``executor="process"`` backend): the
    workers applied their shards' buffered operations directly into
    the shared-memory segments and replied with fixed-size digests —
    no operation stream crossed the pipe.

    ``node`` is the committed group's node id (``-1`` for a global
    phase); ``workers`` counts the workers that committed operations;
    ``ops`` their total buffered operations; ``plan_hits`` /
    ``plan_misses`` the commit-plan cache outcomes of this commit;
    ``bytes_avoided`` an estimate of the reply bytes the shipped
    operation stream would have cost."""

    kind: ClassVar[str] = "zero_merge_commit"

    node: int
    workers: int
    ops: int
    plan_hits: int
    plan_misses: int
    bytes_avoided: int


@dataclass(frozen=True)
class SnapshotPruned(Event):
    """One phase commit skipped copy-on-commit for shared arrays the
    liveness analyzer proved unread before their next overwrite
    (``run_ppm(..., snapshot="pruned")``; see docs/ANALYSIS.md).

    ``commits`` counts the commit targets that committed in place this
    phase; ``bytes_avoided`` the snapshot-copy bytes those swaps would
    have moved."""

    kind: ClassVar[str] = "snapshot_pruned"

    commits: int
    bytes_avoided: int


@dataclass(frozen=True)
class WorkerCrash(Event):
    """The worker supervisor detected one worker failure.

    ``failure`` classifies the detection path: ``crash`` (dead pipe —
    EOF / broken pipe / send error), ``hang`` (no reply within the
    round deadline; the parent killed the stuck child) or
    ``corrupt-reply`` (a reply arrived but could not be interpreted).
    ``command`` is the pipe command in flight (``round``, ``commit``,
    ``do_start``, ...); ``phase`` the first phase of the round being
    dispatched (``-1`` outside a round)."""

    kind: ClassVar[str] = "worker_crash"

    worker: int
    failure: str
    command: str


@dataclass(frozen=True)
class WorkerRespawn(Event):
    """The supervisor respawned one failed worker process.

    ``attempt`` is the 1-based respawn count for this worker across
    the run (the respawn budget bounds its sum over all workers);
    ``host_s`` the host wall-clock seconds from failure detection to
    the fresh process being initialised (backoff included)."""

    kind: ClassVar[str] = "worker_respawn"

    worker: int
    attempt: int
    host_s: float


@dataclass(frozen=True)
class RoundReplay(Event):
    """A respawned worker replayed the current do's logged rounds to
    rebuild its generator and held-recorder state, then re-executed
    the interrupted command.

    ``rounds`` counts the replayed round commands; ``host_s`` is the
    host wall-clock seconds the replay took on the worker."""

    kind: ClassVar[str] = "round_replay"

    worker: int
    rounds: int
    host_s: float


@dataclass(frozen=True)
class PoolDegraded(Event):
    """The supervisor exhausted its respawn budget and degraded the
    run instead of crashing it.

    ``mode`` is ``shrink`` (restart with fewer workers) or ``inline``
    (restart on the sequential in-process executor);
    ``workers_from``/``workers_to`` give the pool size before and
    after (``workers_to == 0`` means inline).  The restarted run is
    deterministic, so committed arrays stay bitwise-identical."""

    kind: ClassVar[str] = "pool_degraded"

    mode: str
    workers_from: int
    workers_to: int


@dataclass(frozen=True)
class FaultInjected(Event):
    """The fault injector fired one planned fault.

    ``fault`` is ``crash``, ``straggler``, ``drop``, ``corrupt``,
    ``delay`` or ``duplicate``.  ``node`` identifies the victim of a
    crash/straggler (``-1`` for message faults); ``src``/``dst`` the
    endpoints of a message fault (``-1`` otherwise).  ``detail``
    carries the fault magnitude — straggler slowdown factor or the
    injected delay in seconds (0.0 when not applicable)."""

    kind: ClassVar[str] = "fault_injected"

    fault: str
    node: int
    src: int
    dst: int
    detail: float


@dataclass(frozen=True)
class RetryAttempt(Event):
    """The reliable delivery layer re-sent one bundle flight.

    ``attempt`` is 1-based (the first *re*-send is attempt 1);
    ``reason`` is ``drop`` or ``corrupt``; ``backoff`` the exponential
    timeout charged before this re-send; ``delivered`` whether this
    attempt got the bundle through."""

    kind: ClassVar[str] = "retry_attempt"

    src: int
    dst: int
    attempt: int
    reason: str
    backoff: float
    delivered: bool


@dataclass(frozen=True)
class CheckpointTaken(Event):
    """A coordinated phase-boundary checkpoint was written.

    ``phase`` is the just-committed phase whose cut the checkpoint
    captures; ``nbytes`` the serialized size of all shared instances;
    ``duration`` the simulated seconds charged; ``t`` the cluster time
    when the checkpoint completed."""

    kind: ClassVar[str] = "checkpoint_taken"

    nbytes: int
    duration: float
    t: float


@dataclass(frozen=True)
class Recovery(Event):
    """The runtime recovered from an injected node crash.

    ``phase`` is the phase at which the crash fired; ``node`` the
    crashed node; ``checkpoint_phase`` the phase of the restored
    checkpoint (``-1`` when no checkpoint existed and the run restarts
    from its initial state); ``t_crash``/``t_resume`` bracket the
    recovery on the simulated clock; ``lost_work`` is the simulated
    time between the restored cut and the crash — work that must be
    re-executed."""

    kind: ClassVar[str] = "recovery"

    node: int
    checkpoint_phase: int
    t_crash: float
    t_resume: float
    lost_work: float


#: Registry used by the trace-file loader (docs/OBSERVABILITY.md has
#: the on-disk schema).
EVENT_TYPES: dict[str, type[Event]] = {
    cls.kind: cls
    for cls in (
        PhaseBegin,
        VpScheduled,
        BundleFlushed,
        MessageSend,
        MessageRecv,
        BarrierWait,
        PhaseCommit,
        WorkerSpan,
        ZeroMergeCommit,
        SnapshotPruned,
        WorkerCrash,
        WorkerRespawn,
        RoundReplay,
        PoolDegraded,
        FaultInjected,
        RetryAttempt,
        CheckpointTaken,
        Recovery,
    )
}


def event_from_dict(d: dict) -> Event:
    """Reconstruct a typed event from its :meth:`Event.to_dict` form."""
    try:
        cls = EVENT_TYPES[d["event"]]
    except KeyError:
        raise ValueError(f"unknown event kind {d.get('event')!r}") from None
    kwargs = {k: v for k, v in d.items() if k != "event"}
    if cls is PhaseCommit:
        kwargs["nodes"] = tuple(NodeSlice(**ns) for ns in kwargs.get("nodes", ()))
    else:
        for f in fields(cls):
            if f.name in kwargs and isinstance(kwargs[f.name], list):
                kwargs[f.name] = tuple(kwargs[f.name])
    return cls(**kwargs)


class EventBus:
    """Append-only event sink with optional subscribers.

    The machine layer's legacy :class:`repro.machine.trace.Trace` and
    the observability :class:`PhaseTrace` are both built on this bus.
    """

    __slots__ = ("events", "_subscribers")

    def __init__(self) -> None:
        self.events: list = []
        self._subscribers: list = []

    def emit(self, event) -> None:
        """Append one event and notify subscribers."""
        self.events.append(event)
        for sub in self._subscribers:
            sub(event)

    def subscribe(self, callback) -> None:
        """Call ``callback(event)`` on every subsequent emit."""
        self._subscribers.append(callback)

    def clear(self) -> None:
        """Drop all recorded events (subscribers stay)."""
        self.events.clear()

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Iterator:
        return iter(self.events)


class PhaseTrace(EventBus):
    """The event bus of one traced PPM run.

    Created by ``run_ppm(..., trace=True)`` (or pass an instance to
    share it across runs).  ``phase`` is the index of the phase
    currently executing — the runtime advances it at every
    :class:`PhaseBegin`, and lower-layer emitters (bundling, timing,
    network) stamp their events with it.
    """

    __slots__ = ("phase",)

    def __init__(self) -> None:
        super().__init__()
        self.phase = -1

    def by_kind(self, kind: str) -> Iterator[Event]:
        """Iterate events of one kind (e.g. ``"phase_commit"``)."""
        return (e for e in self.events if e.kind == kind)

    def phases(self) -> list[int]:
        """Sorted phase indices present in the trace."""
        return sorted({e.phase for e in self.events})
