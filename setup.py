"""Setuptools shim.

Kept alongside pyproject.toml so that ``pip install -e .`` works in
fully offline environments (legacy editable installs do not need the
``wheel`` package, PEP 660 ones do).
"""

from setuptools import setup

setup()
